package stats

import (
	"math"
	"time"
)

// LogHist is a log-bucketed duration histogram for request latencies: bucket
// upper bounds double from 1µs, so the whole SLO-relevant range (microseconds
// to tens of seconds) fits in a few dozen counters while tail quantiles stay
// within one doubling of the truth. Unlike telemetry.Histogram it is a plain
// single-goroutine value — the load driver owns one per latency component and
// only ever touches it from the service loop — so Observe is a handful of
// integer operations and never allocates.
type LogHist struct {
	counts [logHistBuckets + 1]uint64 // last bucket is the +Inf overflow
	count  uint64
	sumNs  int64
	maxNs  int64
	minNs  int64
}

// logHistBuckets spans 1µs..~34s in doublings, matching the telemetry pause
// histogram so latency and pause distributions read on the same scale.
const logHistBuckets = 26

// logHistBound returns bucket i's upper bound in nanoseconds.
func logHistBound(i int) int64 { return int64(1000) << uint(i) }

// Observe records one duration.
func (h *LogHist) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := 0
	for i < logHistBuckets && ns > logHistBound(i) {
		i++
	}
	h.counts[i]++
	h.count++
	h.sumNs += ns
	if ns > h.maxNs {
		h.maxNs = ns
	}
	if h.count == 1 || ns < h.minNs {
		h.minNs = ns
	}
}

// Count returns the number of observations.
func (h *LogHist) Count() uint64 { return h.count }

// Sum returns the total of all observations.
func (h *LogHist) Sum() time.Duration { return time.Duration(h.sumNs) }

// Max returns the largest observation (0 when empty).
func (h *LogHist) Max() time.Duration { return time.Duration(h.maxNs) }

// Min returns the smallest observation (0 when empty).
func (h *LogHist) Min() time.Duration { return time.Duration(h.minNs) }

// Mean returns the mean observation (0 when empty).
func (h *LogHist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sumNs / int64(h.count))
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket holding the target rank, clamped to [Min, Max] so q=0
// and q=1 are exact.
func (h *LogHist) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= rank {
			lo := int64(0)
			if i > 0 {
				lo = logHistBound(i - 1)
			}
			hi := h.maxNs
			if i < logHistBuckets && logHistBound(i) < hi {
				hi = logHistBound(i)
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			est := lo + int64(frac*float64(hi-lo))
			if est > h.maxNs {
				est = h.maxNs
			}
			if est < h.minNs {
				est = h.minNs
			}
			return time.Duration(est)
		}
		cum += float64(c)
	}
	return h.Max()
}

// Tail returns the SLO quantile set in one call: p50, p99, p999, and the
// exact maximum.
func (h *LogHist) Tail() (p50, p99, p999, max time.Duration) {
	return h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.Max()
}

// Merge folds another histogram into this one bucket by bucket, so many
// per-session histograms aggregate into one fleet-level distribution
// without re-observing raw values. Buckets are identical across all
// LogHists (the bounds are compile-time constants), so the merge is exact —
// quantiles of the merged histogram equal quantiles over the union of
// observations, up to the usual one-doubling bucket resolution.
func (h *LogHist) Merge(o *LogHist) {
	if o.count == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	if h.count == 0 || o.minNs < h.minNs {
		h.minNs = o.minNs
	}
	if o.maxNs > h.maxNs {
		h.maxNs = o.maxNs
	}
	h.count += o.count
	h.sumNs += o.sumNs
}

// Buckets returns the non-empty (upperBoundNs, count) pairs, low to high
// (the overflow bucket reports upper bound math.MaxInt64). For exports.
func (h *LogHist) Buckets() (bounds []int64, counts []uint64) {
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		b := int64(math.MaxInt64)
		if i < logHistBuckets {
			b = logHistBound(i)
		}
		bounds = append(bounds, b)
		counts = append(counts, c)
	}
	return bounds, counts
}
