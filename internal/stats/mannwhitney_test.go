package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestMannWhitneyIdenticalSamples(t *testing.T) {
	a := []float64{5, 6, 7, 8, 9}
	u, p := MannWhitney(a, a)
	if want := float64(len(a)*len(a)) / 2; u != want {
		t.Errorf("U = %v, want %v for identical samples", u, want)
	}
	if p < 0.99 {
		t.Errorf("p = %v, want ~1 for identical samples", p)
	}
}

func TestMannWhitneyClearSeparation(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := []float64{101, 102, 103, 104, 105, 106, 107, 108}
	_, p := MannWhitney(a, b)
	if p >= 0.01 {
		t.Errorf("p = %v, want < 0.01 for fully separated samples", p)
	}
	// Symmetry: order of the arguments must not change the verdict.
	_, p2 := MannWhitney(b, a)
	if math.Abs(p-p2) > 1e-12 {
		t.Errorf("p not symmetric: %v vs %v", p, p2)
	}
}

func TestMannWhitneyInjectedSlowdown(t *testing.T) {
	// The shape the trajectory gate sees: ~10 noisy trials, new build 30%
	// slower. Deterministic noise so the test cannot flake.
	rng := rand.New(rand.NewSource(7))
	old := make([]float64, 10)
	slow := make([]float64, 10)
	for i := range old {
		base := 100 + 3*rng.Float64()
		old[i] = base
		slow[i] = base*1.3 + 3*rng.Float64()
	}
	_, p := MannWhitney(old, slow)
	if p >= 0.05 {
		t.Errorf("p = %v, want < 0.05 for a 30%% slowdown over 10 trials", p)
	}
}

func TestMannWhitneyUnderpowered(t *testing.T) {
	if _, p := MannWhitney([]float64{1, 2}, []float64{100, 200, 300}); p != 1 {
		t.Errorf("p = %v, want 1 when a side has fewer than 3 observations", p)
	}
	if _, p := MannWhitney(nil, nil); p != 1 {
		t.Errorf("p = %v, want 1 for empty samples", p)
	}
}

func TestMannWhitneyAllTied(t *testing.T) {
	a := []float64{4, 4, 4, 4}
	if _, p := MannWhitney(a, a); p != 1 {
		t.Errorf("p = %v, want 1 when every observation is tied", p)
	}
}

func TestQuantileExact(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile of empty slice should be 0")
	}
}

func TestSpreadPct(t *testing.T) {
	// Median 100, q25 = 97.5, q75 = 102.5 → IQR 5 → 5%.
	xs := []float64{95, 100, 105}
	if got := SpreadPct(xs); math.Abs(got-5) > 1e-9 {
		t.Errorf("SpreadPct = %v, want 5", got)
	}
	if SpreadPct(nil) != 0 {
		t.Error("SpreadPct of empty slice should be 0")
	}
}

func TestLogHistTail(t *testing.T) {
	var h LogHist
	// 1000 fast requests at ~1ms, five slow outliers at 50ms: the outliers
	// are past the p999 rank, so the tail quantile must surface them.
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		h.Observe(50 * time.Millisecond)
	}

	p50, p99, p999, max := h.Tail()
	if max != 50*time.Millisecond {
		t.Errorf("max = %v, want 50ms", max)
	}
	if p50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want ≤ 2ms", p50)
	}
	if p99 > 2*time.Millisecond {
		t.Errorf("p99 = %v, want ≤ 2ms (outliers are 5 in 1005)", p99)
	}
	// The outliers hold the p999+ range: the estimate must land within their
	// bucket, well above the fast mass.
	if p999 < 10*time.Millisecond || p999 > 50*time.Millisecond {
		t.Errorf("p999 = %v, want within the outliers' bucket", p999)
	}
	if h.Count() != 1005 {
		t.Errorf("count = %d, want 1005", h.Count())
	}
	if want := 1000*time.Millisecond + 250*time.Millisecond; h.Sum() != want {
		t.Errorf("sum = %v, want %v", h.Sum(), want)
	}
	if h.Min() != time.Millisecond {
		t.Errorf("min = %v, want 1ms", h.Min())
	}
}

func TestLogHistEmptyAndClamps(t *testing.T) {
	var h LogHist
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Observe(-time.Second) // negative durations clamp to 0
	if h.Max() != 0 || h.Min() != 0 {
		t.Errorf("negative observation should clamp: max=%v min=%v", h.Max(), h.Min())
	}
	h.Observe(100 * time.Second) // beyond the last bound: overflow bucket
	if h.Quantile(1) != 100*time.Second {
		t.Errorf("q=1 should be the exact max, got %v", h.Quantile(1))
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 2 || counts[0] != 1 || counts[1] != 1 {
		t.Errorf("buckets = %v %v, want two single-count buckets", bounds, counts)
	}
}

func TestLogHistQuantileMonotone(t *testing.T) {
	var h LogHist
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		h.Observe(time.Duration(rng.Int63n(int64(time.Second))))
	}
	prev := time.Duration(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}
