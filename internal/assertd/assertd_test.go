package assertd_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gcassert/internal/assertd"
)

// Guest programs for the tests. leakerSrc trips assert-dead once per run
// (the local still roots the node at the forced collection); steadySrc is
// violation-free churn; oomSrc retains until the heap gives out; spinSrc
// burns steps until the budget fails it.
const (
	leakerSrc = `
class Node { Node next; }
class Main {
  void main() {
    Node n = new Node();
    assertDead(n);
    gc();
  }
}`
	steadySrc = `
class Node { Node next; }
class Main {
  void main() {
    Node g = null;
    int j = 0;
    while (j < 16) { Node t = new Node(); t.next = g; g = t; j = j + 1; }
    g = null;
    gc();
  }
}`
	oomSrc = `
class Node { Node next; }
class Main {
  void main() {
    Node head = null;
    int i = 0;
    while (i < 100000000) { Node t = new Node(); t.next = head; head = t; i = i + 1; }
  }
}`
	spinSrc = `
class Main {
  void main() {
    int i = 0;
    while (i < 100000000) { i = i + 1; }
  }
}`
)

// testServer stands up a Server plus its HTTP surface.
func testServer(t *testing.T, cfg assertd.Config) (*assertd.Server, *httptest.Server) {
	t.Helper()
	s := assertd.NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any, wantCode int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s = %d, want %d; body: %s", method, url, resp.StatusCode, wantCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
}

func createTenant(t *testing.T, ts *httptest.Server, id string, opts assertd.TenantOptions) {
	t.Helper()
	var st assertd.TenantStats
	doJSON(t, "POST", ts.URL+"/tenants", assertd.CreateRequest{ID: id, Options: opts}, http.StatusCreated, &st)
	if st.ID != id {
		t.Fatalf("created tenant id = %q, want %q", st.ID, id)
	}
}

func submit(t *testing.T, ts *httptest.Server, id, src string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/tenants/"+id+"/program", "text/plain", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit to %s = %d: %s", id, resp.StatusCode, body)
	}
}

func drive(t *testing.T, ts *httptest.Server, id string, n int, collect bool) assertd.DriveResult {
	t.Helper()
	var res assertd.DriveResult
	doJSON(t, "POST", ts.URL+"/tenants/"+id+"/drive",
		assertd.DriveRequest{Requests: n, Collect: collect}, http.StatusOK, &res)
	return res
}

func tenantStats(t *testing.T, ts *httptest.Server, id string) assertd.TenantStats {
	t.Helper()
	var st assertd.TenantStats
	doJSON(t, "GET", ts.URL+"/tenants/"+id, nil, http.StatusOK, &st)
	return st
}

func TestTenantLifecycle(t *testing.T) {
	_, ts := testServer(t, assertd.Config{InstanceID: "host-1"})
	createTenant(t, ts, "steady", assertd.TenantOptions{HeapMiB: 4})
	submit(t, ts, "steady", steadySrc)

	res := drive(t, ts, "steady", 5, true)
	if res.Requests != 5 || res.Failures != 0 || res.Violations != 0 {
		t.Fatalf("drive result: %+v", res)
	}
	st := tenantStats(t, ts, "steady")
	if !st.Program || st.Requests != 5 || st.Failures != 0 || st.Violations != 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.Collections == 0 {
		t.Errorf("no collections recorded (guest calls gc())")
	}
	if st.Latency.Count != 5 || st.Latency.P99 <= 0 {
		t.Errorf("latency summary: %+v", st.Latency)
	}
	if st.InstanceID != "host-1/steady" {
		t.Errorf("instance ID = %q, want host-1/steady", st.InstanceID)
	}

	var list []assertd.TenantStats
	doJSON(t, "GET", ts.URL+"/tenants", nil, http.StatusOK, &list)
	if len(list) != 1 || list[0].ID != "steady" {
		t.Errorf("list: %+v", list)
	}

	doJSON(t, "DELETE", ts.URL+"/tenants/steady", nil, http.StatusOK, nil)
	doJSON(t, "GET", ts.URL+"/tenants/steady", nil, http.StatusNotFound, nil)
	// A deleted ID can be recreated fresh.
	createTenant(t, ts, "steady", assertd.TenantOptions{})
	if st := tenantStats(t, ts, "steady"); st.Requests != 0 {
		t.Errorf("recreated tenant inherited state: %+v", st)
	}
}

func TestLeakerViolationsAndStream(t *testing.T) {
	_, ts := testServer(t, assertd.Config{})
	createTenant(t, ts, "leaker", assertd.TenantOptions{HeapMiB: 4})
	submit(t, ts, "leaker", leakerSrc)

	// Attach the SSE stream before driving so no frame is missed.
	resp, err := http.Get(ts.URL + "/tenants/leaker/violations")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}

	const runs = 3
	res := drive(t, ts, "leaker", runs, false)
	if res.Violations != runs {
		t.Errorf("drive violations = %d, want %d (one assert-dead per run)", res.Violations, runs)
	}
	sc := bufio.NewScanner(resp.Body)
	var frames []assertd.ViolationFrame
	for len(frames) < runs && sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var f assertd.ViolationFrame
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		frames = append(frames, f)
	}
	for i, f := range frames {
		if f.Tenant != "leaker" || f.Kind != "assert-dead" || f.TypeName != "Node" {
			t.Errorf("frame %d: %+v", i, f)
		}
		if f.Seq != uint64(i+1) {
			t.Errorf("frame %d seq = %d", i, f.Seq)
		}
	}
	st := tenantStats(t, ts, "leaker")
	if st.Violations != runs || st.ViolationsByKind["assert-dead"] != runs {
		t.Errorf("stats violations: %+v", st)
	}
	if len(st.AssertCosts) == 0 {
		t.Errorf("no assertion cost attribution in stats")
	}

	// Deleting the tenant ends the stream: the body reaches EOF rather
	// than hanging.
	doJSON(t, "DELETE", ts.URL+"/tenants/leaker", nil, http.StatusOK, nil)
	for sc.Scan() {
	}
	if err := sc.Err(); err != nil && err != io.ErrUnexpectedEOF {
		t.Logf("stream end: %v", err) // transport-level close variants are fine
	}
}

func TestGuestFaultIsolation(t *testing.T) {
	_, ts := testServer(t, assertd.Config{})
	createTenant(t, ts, "oom", assertd.TenantOptions{HeapMiB: 1})
	createTenant(t, ts, "spin", assertd.TenantOptions{HeapMiB: 1, MaxSteps: 10_000})
	createTenant(t, ts, "ok", assertd.TenantOptions{HeapMiB: 4})
	submit(t, ts, "oom", oomSrc)
	submit(t, ts, "spin", spinSrc)
	submit(t, ts, "ok", steadySrc)

	if res := drive(t, ts, "oom", 2, false); res.Failures != 2 ||
		!strings.Contains(res.LastError, "out of memory") {
		t.Errorf("oom drive: %+v", res)
	}
	if res := drive(t, ts, "spin", 1, false); res.Failures != 1 ||
		!strings.Contains(res.LastError, "budget") {
		t.Errorf("spin drive: %+v", res)
	}
	// Both faults were isolated: the healthy tenant — and the faulting
	// tenants themselves — keep serving.
	if res := drive(t, ts, "ok", 3, true); res.Failures != 0 || res.Violations != 0 {
		t.Errorf("healthy tenant after faults: %+v", res)
	}
	if res := drive(t, ts, "oom", 1, false); res.Requests != 1 {
		t.Errorf("oom tenant did not survive: %+v", res)
	}
}

func TestHaltReactionFailsRequestOnly(t *testing.T) {
	_, ts := testServer(t, assertd.Config{})
	createTenant(t, ts, "halting", assertd.TenantOptions{
		HeapMiB: 4,
		React:   map[string]string{"dead": "halt"},
	})
	submit(t, ts, "halting", leakerSrc)
	res := drive(t, ts, "halting", 2, false)
	if res.Failures != 2 || !strings.Contains(res.LastError, "halt") {
		t.Errorf("halting drive: %+v", res)
	}
	if res.Violations == 0 {
		t.Errorf("halt reaction reported no violations: %+v", res)
	}
	// The tenant survives its own halts.
	if _, err := http.Get(ts.URL + "/tenants/halting"); err != nil {
		t.Fatal(err)
	}
}

func TestAPIErrors(t *testing.T) {
	_, ts := testServer(t, assertd.Config{MaxTenants: 2})
	createTenant(t, ts, "a", assertd.TenantOptions{})

	// Duplicate create, bad IDs, capacity, unknown tenants, bad programs.
	doJSON(t, "POST", ts.URL+"/tenants", assertd.CreateRequest{ID: "a"}, http.StatusConflict, nil)
	doJSON(t, "POST", ts.URL+"/tenants", assertd.CreateRequest{ID: "no/slash"}, http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/tenants", assertd.CreateRequest{ID: ""}, http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/tenants",
		assertd.CreateRequest{ID: "b", Options: assertd.TenantOptions{React: map[string]string{"dead": "explode"}}},
		http.StatusBadRequest, nil)
	createTenant(t, ts, "b", assertd.TenantOptions{})
	doJSON(t, "POST", ts.URL+"/tenants", assertd.CreateRequest{ID: "c"}, http.StatusServiceUnavailable, nil)

	doJSON(t, "GET", ts.URL+"/tenants/nope", nil, http.StatusNotFound, nil)
	doJSON(t, "DELETE", ts.URL+"/tenants/nope", nil, http.StatusNotFound, nil)
	doJSON(t, "POST", ts.URL+"/tenants/a/drive", assertd.DriveRequest{Requests: 1}, http.StatusConflict, nil) // no program
	resp, err := http.Post(ts.URL+"/tenants/a/program", "text/plain", strings.NewReader("class {"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad program = %d, want 400", resp.StatusCode)
	}
}

func TestMetricsCarryTenantLabel(t *testing.T) {
	_, ts := testServer(t, assertd.Config{})
	for _, id := range []string{"m1", "m2"} {
		createTenant(t, ts, id, assertd.TenantOptions{HeapMiB: 4})
		submit(t, ts, id, steadySrc)
		drive(t, ts, id, 2, true)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`gcassertd_requests_total{tenant="m1"} 2`,
		`gcassertd_requests_total{tenant="m2"} 2`,
		`gcassertd_tenants 2`,
		`gcassertd_heap_live_words{tenant="m1"}`,
		`gcassertd_request_seconds_count{tenant="m2"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Series survive tenant deletion (counters must not reset or vanish
	// mid-scrape-interval).
	doJSON(t, "DELETE", ts.URL+"/tenants/m1", nil, http.StatusOK, nil)
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(body2), `gcassertd_requests_total{tenant="m1"} 2`) {
		t.Errorf("deleted tenant's series vanished from /metrics")
	}
}

func TestEventsStreamReplay(t *testing.T) {
	_, ts := testServer(t, assertd.Config{})
	createTenant(t, ts, "ev", assertd.TenantOptions{HeapMiB: 4})
	submit(t, ts, "ev", steadySrc)
	drive(t, ts, "ev", 2, true) // at least 3 collections (2 gc() + forced)

	ctxURL := fmt.Sprintf("%s/tenants/ev/events?replay=%d", ts.URL, 2)
	req, _ := http.NewRequest("GET", ctxURL, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	got := 0
	for got < 2 && sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			var ev struct {
				Seq    uint64 `json:"seq"`
				Reason string `json:"reason"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(sc.Text(), "data: ")), &ev); err != nil {
				t.Fatalf("bad event frame: %v", err)
			}
			got++
		}
	}
	if got != 2 {
		t.Fatalf("replayed %d events, want 2", got)
	}
}
