package assertd_test

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gcassert/internal/assertd"
	"gcassert/internal/fleet"
	"gcassert/internal/slo"
)

// serverClock is a goroutine-safe fake clock for assertd.Config.Clock:
// tenant service loops, HTTP handlers and the test all read it
// concurrently, and only the test advances it.
type serverClock struct{ ns atomic.Int64 }

func (c *serverClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *serverClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// testSLOSpec scales the SRE windows down so a minute of fake-clock traffic
// walks the full alert lifecycle: a 60s compliance window, a fast rule at
// 5s/30s burning 10×, and a slow rule parked at an unreachable burn (the
// max possible burn at a 1% budget fraction is 100).
func testSLOSpec() *slo.Spec {
	return &slo.Spec{
		Window: slo.Duration(60 * time.Second),
		Objectives: []slo.Objective{
			{Kind: slo.KindViolationRate, MaxPerMillion: 10000},
		},
		Alerting: slo.Alerting{
			FastShort: slo.Duration(5 * time.Second),
			FastLong:  slo.Duration(30 * time.Second),
			FastBurn:  10,
			SlowShort: slo.Duration(30 * time.Second),
			SlowLong:  slo.Duration(60 * time.Second),
			SlowBurn:  5000,
		},
	}
}

// readAlertFrames reads SSE data frames from GET /alerts until it has n of
// them (replay makes past transitions immediately available).
func readAlertFrames(t *testing.T, baseURL string, n int) []slo.AlertEvent {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", baseURL+"/alerts", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /alerts = %d", resp.StatusCode)
	}
	var evs []slo.AlertEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() && len(evs) < n {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev slo.AlertEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad alert frame %q: %v", line, err)
		}
		evs = append(evs, ev)
	}
	if len(evs) < n {
		t.Fatalf("read %d alert frames, want %d (scan err: %v)", len(evs), n, sc.Err())
	}
	return evs
}

// TestSLOAlertLifecycle is the service-level acceptance test: a fake clock
// drives a tenant through budget exhaustion and the test pins the exact
// alert sequence — pending, fast-burn firing, hysteresis clear — as seen
// through the /alerts replay, GET /tenants/{id}/slo, and /metrics.
//
// Traffic shape (100 requests per fake second, violation-rate budget 1%):
// 30 clean seconds establish baseline, then the leaker program turns every
// request into a violation. At the switch the 5s window burns ~16× (over
// the 10× threshold) while the 30s window is still diluted — pending. By
// the 4th bad second the 30s window crosses too — firing. Swapping the
// steady program back drains the short window within ~6s; the alert clears
// only after the burn has stayed below 0.9× threshold for the 5s hold.
func TestSLOAlertLifecycle(t *testing.T) {
	clk := &serverClock{}
	clk.ns.Store(int64(1000 * time.Second)) // arbitrary non-zero epoch
	_, ts := testServer(t, assertd.Config{Clock: clk.now})

	createTenant(t, ts, "svc", assertd.TenantOptions{SLO: testSLOSpec()})
	submit(t, ts, "svc", steadySrc)
	for i := 0; i < 30; i++ {
		drive(t, ts, "svc", 100, false)
		clk.advance(time.Second)
	}

	// The budget-torching phase: every leaker request asserts a live node
	// dead, so violations arrive at 100× the budgeted rate.
	submit(t, ts, "svc", leakerSrc)
	for i := 0; i < 4; i++ {
		drive(t, ts, "svc", 100, false)
		clk.advance(time.Second)
	}

	var mid slo.Status
	doJSON(t, "GET", ts.URL+"/tenants/svc/slo", nil, http.StatusOK, &mid)
	if mid.Compliant {
		t.Fatal("tenant still compliant after burning 400 violations against a 1% budget")
	}
	obj := mid.Objectives[0]
	if obj.BudgetRemainingRatio != 0 {
		t.Fatalf("budget remaining = %v, want 0 (spent 400 of ~49 allowed)", obj.BudgetRemainingRatio)
	}
	firingNow := false
	for _, a := range obj.Alerts {
		if a.Severity == slo.SeverityFast && a.State == "firing" {
			firingNow = true
		}
		if a.Severity == slo.SeveritySlow && a.State != "ok" {
			t.Fatalf("slow rule = %s, want ok (burn threshold is unreachable)", a.State)
		}
	}
	if !firingNow {
		t.Fatalf("fast rule not firing mid-burn; status: %+v", obj.Alerts)
	}

	// Recovery: steady traffic drains the short window, then the hold
	// elapses and the alert clears on the record path.
	submit(t, ts, "svc", steadySrc)
	for i := 0; i < 15; i++ {
		drive(t, ts, "svc", 100, false)
		clk.advance(time.Second)
	}

	// The exact transition sequence, via the /alerts SSE replay.
	evs := readAlertFrames(t, ts.URL, 3)
	type step struct{ state, prev string }
	want := []step{{"pending", "ok"}, {"firing", "pending"}, {"ok", "firing"}}
	for i, ev := range evs {
		if ev.Tenant != "svc" || ev.Objective != "violation_rate" || ev.Severity != slo.SeverityFast {
			t.Fatalf("frame %d routed wrong: tenant=%q objective=%q severity=%q",
				i, ev.Tenant, ev.Objective, ev.Severity)
		}
		if ev.State != want[i].state || ev.Prev != want[i].prev {
			t.Fatalf("transition %d = %s→%s, want %s→%s",
				i, ev.Prev, ev.State, want[i].prev, want[i].state)
		}
	}
	if evs[1].BurnShort < evs[1].Threshold || evs[1].BurnLong < evs[1].Threshold {
		t.Fatalf("firing with burns %.1f/%.1f below threshold %.1f",
			evs[1].BurnShort, evs[1].BurnLong, evs[1].Threshold)
	}
	if evs[2].BurnShort >= 0.9*evs[2].Threshold {
		t.Fatalf("cleared at burn %.2f, want below the 0.9× clear ratio", evs[2].BurnShort)
	}
	if hold := evs[2].UnixNs - evs[1].UnixNs; hold < int64(5*time.Second) {
		t.Fatalf("cleared %v after firing, want ≥ the 5s hold", time.Duration(hold))
	}

	// The alert is resolved but the torched budget stays visible until the
	// bad minute ages out of the compliance window.
	var end slo.Status
	doJSON(t, "GET", ts.URL+"/tenants/svc/slo", nil, http.StatusOK, &end)
	for _, a := range end.Objectives[0].Alerts {
		if a.State != "ok" {
			t.Fatalf("%s rule = %s after recovery, want ok", a.Severity, a.State)
		}
	}
	if end.Objectives[0].Met {
		t.Fatal("objective met while 400 violations remain inside the window")
	}

	// Tenant stats carry the SLO judgment; the Prometheus surface carries
	// the tenant-labeled budget, burn and state series.
	if st := tenantStats(t, ts, "svc"); st.SLO == nil {
		t.Fatal("tenant stats missing slo section")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, series := range []string{
		`gcassertd_slo_budget_remaining_ratio{objective="violation_rate",tenant="svc"} 0`,
		`gcassertd_slo_burn_rate{objective="violation_rate",severity="fast",tenant="svc"}`,
		`gcassertd_slo_alert_state{objective="violation_rate",severity="fast",tenant="svc"} 0`,
		`gcassertd_slo_alert_transitions_total{tenant="svc"} 3`,
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("metrics missing %s", series)
		}
	}
}

// TestSLOIdleClearOnRead pins the status-read evaluation path: a firing
// alert on a tenant that stops receiving traffic clears on a plain GET once
// the windows have drained, with the transition published like any other.
func TestSLOIdleClearOnRead(t *testing.T) {
	clk := &serverClock{}
	clk.ns.Store(int64(1000 * time.Second))
	_, ts := testServer(t, assertd.Config{Clock: clk.now})

	createTenant(t, ts, "idle", assertd.TenantOptions{SLO: testSLOSpec()})
	submit(t, ts, "idle", leakerSrc)
	for i := 0; i < 35; i++ {
		drive(t, ts, "idle", 100, false)
		clk.advance(time.Second)
	}
	var mid slo.Status
	doJSON(t, "GET", ts.URL+"/tenants/idle/slo", nil, http.StatusOK, &mid)

	// Long idle: no records arrive, so only the read below can notice the
	// burn stopped. 70s also ages every violation out of the 60s window.
	clk.advance(70 * time.Second)
	var end slo.Status
	doJSON(t, "GET", ts.URL+"/tenants/idle/slo", nil, http.StatusOK, &end)
	if !end.Compliant {
		t.Fatalf("idle tenant not compliant after windows drained: %+v", end)
	}
}

// TestSLOFleetShipping wires a gcassertd at a live gcfleet collector: every
// alert transition ships a sealed SLO report under the composed host/tenant
// identity, and the collector's /fleet/slo rollup ranks the tenant.
func TestSLOFleetShipping(t *testing.T) {
	store, err := fleet.OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	fleetTS := httptest.NewServer(fleet.NewServer(store).Handler())
	defer fleetTS.Close()

	clk := &serverClock{}
	clk.ns.Store(int64(1000 * time.Second))
	_, ts := testServer(t, assertd.Config{
		InstanceID: "ship-host", FleetURL: fleetTS.URL, Clock: clk.now,
	})
	createTenant(t, ts, "leaky", assertd.TenantOptions{SLO: testSLOSpec()})
	submit(t, ts, "leaky", leakerSrc)
	for i := 0; i < 10; i++ {
		drive(t, ts, "leaky", 100, false)
		clk.advance(time.Second)
	}

	// Shipping is asynchronous (a dedicated sender goroutine), so poll the
	// collector until the firing report lands.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var doc fleet.SLORollup
		doJSON(t, "GET", fleetTS.URL+"/fleet/slo", nil, http.StatusOK, &doc)
		if doc.Firing >= 1 {
			row := doc.Tenants[0]
			if row.Instance != "ship-host/leaky" || row.Tenant != "leaky" {
				t.Fatalf("rollup row identity = %q/%q, want ship-host/leaky", row.Instance, row.Tenant)
			}
			if row.Compliant || row.MinBudgetRemaining != 0 {
				t.Fatalf("rollup row budget wrong: %+v", row)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no firing SLO report reached the collector; rollup: %+v", doc)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSLOEndpoints covers the HTTP contract around the SLO resource:
// creation-time validation, the PUT/GET/DELETE lifecycle, and the 400/404
// error mapping.
func TestSLOEndpoints(t *testing.T) {
	_, ts := testServer(t, assertd.Config{})

	// Creation rejects a bad spec atomically — no tenant is left behind.
	bad := &slo.Spec{Objectives: []slo.Objective{{Kind: "nonsense"}}}
	doJSON(t, "POST", ts.URL+"/tenants",
		assertd.CreateRequest{ID: "broken", Options: assertd.TenantOptions{SLO: bad}},
		http.StatusBadRequest, nil)
	doJSON(t, "GET", ts.URL+"/tenants/broken", nil, http.StatusNotFound, nil)

	createTenant(t, ts, "plain", assertd.TenantOptions{})
	doJSON(t, "GET", ts.URL+"/tenants/plain/slo", nil, http.StatusNotFound, nil)
	doJSON(t, "PUT", ts.URL+"/tenants/plain/slo", bad, http.StatusBadRequest, nil)

	var st slo.Status
	doJSON(t, "PUT", ts.URL+"/tenants/plain/slo", testSLOSpec(), http.StatusOK, &st)
	if len(st.Objectives) != 1 || st.Objectives[0].Kind != slo.KindViolationRate {
		t.Fatalf("PUT returned %+v, want one violation_rate objective", st.Objectives)
	}
	if !st.Compliant {
		t.Fatal("fresh SLO should start compliant")
	}
	doJSON(t, "GET", ts.URL+"/tenants/plain/slo", nil, http.StatusOK, &st)

	doJSON(t, "DELETE", ts.URL+"/tenants/plain/slo", nil, http.StatusOK, nil)
	doJSON(t, "GET", ts.URL+"/tenants/plain/slo", nil, http.StatusNotFound, nil)
	if stats := tenantStats(t, ts, "plain"); stats.SLO != nil {
		t.Fatal("stats still carry an slo section after DELETE")
	}
}
