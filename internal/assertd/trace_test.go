package assertd_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gcassert/internal/assertd"
	"gcassert/internal/trace"
)

// driveTraced is drive with an optional incoming traceparent header; it
// returns the response headers so tests can check context propagation.
func driveTraced(t *testing.T, ts *httptest.Server, id string, n int, collect bool, traceparent string) (assertd.DriveResult, http.Header) {
	t.Helper()
	body, err := json.Marshal(assertd.DriveRequest{Requests: n, Collect: collect})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/tenants/"+id+"/drive", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if traceparent != "" {
		req.Header.Set(trace.Header, traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced drive = %d: %s", resp.StatusCode, raw)
	}
	var res assertd.DriveResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decoding %q: %v", raw, err)
	}
	return res, resp.Header
}

func getTrace(t *testing.T, ts *httptest.Server, tenant, traceID string) *trace.Document {
	t.Helper()
	var doc trace.Document
	doJSON(t, "GET", ts.URL+"/tenants/"+tenant+"/traces/"+traceID, nil, http.StatusOK, &doc)
	return &doc
}

// TestTracedDriveEndToEnd is the tentpole acceptance flow: a violating
// request batch driven with an upstream traceparent yields a stored trace
// that continues the caller's trace, whose GC collections are child spans
// of the requests they paused, annotated with trigger reason, per-kind
// assertion cost, and violation provenance — and whose pause rollup
// reconciles with the tenant's GC accounting.
func TestTracedDriveEndToEnd(t *testing.T) {
	const upstream = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

	_, ts := testServer(t, assertd.Config{InstanceID: "trace-host"})
	createTenant(t, ts, "leaker", assertd.TenantOptions{
		HeapMiB:    2,
		Provenance: "exhaustive",
		Trace:      &assertd.TraceOptions{Probability: 1},
	})
	submit(t, ts, "leaker", leakerSrc)

	res, hdr := driveTraced(t, ts, "leaker", 3, true, upstream)
	if res.Violations != 3 {
		t.Fatalf("drive violations = %d, want 3", res.Violations)
	}
	if res.TraceID != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace id %q does not continue the caller's trace", res.TraceID)
	}
	if res.TraceSampled != trace.KeepViolation {
		t.Errorf("sampled reason = %q, want %q", res.TraceSampled, trace.KeepViolation)
	}
	sc, ok := trace.ParseTraceparent(res.Traceparent)
	if !ok || sc.TraceID.String() != res.TraceID {
		t.Fatalf("response traceparent %q invalid or wrong trace", res.Traceparent)
	}
	if sc.SpanID.String() == "b7ad6b7169203331" {
		t.Error("response span id echoes the caller's span — no root span was minted")
	}
	if got := hdr.Get(trace.Header); got != res.Traceparent {
		t.Errorf("response header traceparent = %q, body says %q", got, res.Traceparent)
	}

	// The stored trace is listed and retrievable.
	var sums []trace.Summary
	doJSON(t, "GET", ts.URL+"/tenants/leaker/traces", nil, http.StatusOK, &sums)
	if len(sums) != 1 || sums[0].TraceID != res.TraceID {
		t.Fatalf("summaries = %+v, want the one kept trace", sums)
	}
	if sums[0].Requests != 3 || sums[0].Violations != 3 || sums[0].GCs == 0 {
		t.Errorf("summary rollup = %+v", sums[0])
	}
	doc := getTrace(t, ts, "leaker", res.TraceID)

	// Root span parents under the caller's span.
	root := doc.Span(doc.RootSpanID)
	if root == nil {
		t.Fatal("root span missing from document")
	}
	if root.Parent != "b7ad6b7169203331" {
		t.Errorf("root parent = %q, want the caller's span", root.Parent)
	}

	// Every violation rides a GC child span, with provenance and cost.
	spans := map[string]*trace.Span{}
	for i := range doc.Spans {
		spans[doc.Spans[i].SpanID] = &doc.Spans[i]
	}
	var viols int
	var sawProvenance, sawCost, sawReason bool
	var gcPauseSum int64
	for i := range doc.Spans {
		sp := &doc.Spans[i]
		if sp.Name != "gc" {
			continue
		}
		// JSON round-trips numeric attrs as float64.
		if ns, ok := sp.Attrs["total_ns"].(float64); ok {
			gcPauseSum += int64(ns)
		} else {
			t.Errorf("gc span %s has no total_ns attr: %v", sp.SpanID, sp.Attrs)
		}
		if r, _ := sp.Attrs["reason"].(string); r != "" {
			sawReason = true
		}
		if _, ok := sp.Attrs["cost_ns.assert-dead"]; ok {
			sawCost = true
		}
		for _, ev := range sp.Events {
			if !strings.HasPrefix(ev.Name, "violation:") {
				continue
			}
			viols++
			if ev.Name != "violation:assert-dead" {
				t.Errorf("violation event name = %q", ev.Name)
			}
			if site, _ := ev.Attrs["allocated_at"].(string); site != "" {
				sawProvenance = true
			}
			// The collection that detected the violation must be a child of
			// the request that triggered it (exact tag evidence).
			parent := spans[sp.Parent]
			if parent == nil || parent.Name != "request" {
				t.Errorf("violating gc span parented on %v, want a request span", parent)
			}
		}
	}
	if viols != 3 {
		t.Errorf("violation events on gc spans = %d, want 3", viols)
	}
	if !sawProvenance {
		t.Error("no violation event carries allocated_at provenance (provenance=exhaustive)")
	}
	if !sawCost {
		t.Error("no gc span carries per-kind cost attribution (cost_ns.assert-dead)")
	}
	if !sawReason {
		t.Error("no gc span carries a trigger/reason annotation")
	}

	// Reconciliation property: the document's pause rollup is exactly the
	// sum of its gc spans, and no more than the tenant's lifetime GC time.
	if gcPauseSum != doc.GCPauseNs {
		t.Errorf("sum of gc span pauses = %d, document rollup = %d", gcPauseSum, doc.GCPauseNs)
	}
	st := tenantStats(t, ts, "leaker")
	if doc.GCPauseNs <= 0 || doc.GCPauseNs > st.GCTotalNs {
		t.Errorf("trace pause %dns outside (0, tenant total %dns]", doc.GCPauseNs, st.GCTotalNs)
	}
	if doc.MaxPauseNs > st.MaxPauseNs {
		t.Errorf("trace max pause %dns exceeds tenant max %dns", doc.MaxPauseNs, st.MaxPauseNs)
	}
	if st.TracesStored != 1 {
		t.Errorf("stats traces_stored = %d, want 1", st.TracesStored)
	}

	// The latency histogram carries the kept trace as an exemplar, and the
	// exemplar resolves back to the stored trace.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	var exemplarID string
	for _, line := range strings.Split(string(metrics), "\n") {
		if !strings.HasPrefix(line, "gcassertd_request_seconds_bucket") || !strings.Contains(line, `trace_id="`) {
			continue
		}
		part := line[strings.Index(line, `trace_id="`)+len(`trace_id="`):]
		exemplarID = part[:strings.Index(part, `"`)]
		break
	}
	if exemplarID == "" {
		t.Fatal("no trace_id exemplar on gcassertd_request_seconds buckets")
	}
	if exemplarID != res.TraceID {
		t.Errorf("exemplar trace id = %s, want %s", exemplarID, res.TraceID)
	}
	getTrace(t, ts, "leaker", exemplarID) // must resolve (200)
}

// TestTracedDriveFreshTrace: with no (or a malformed) upstream traceparent
// the drive mints a fresh trace instead of failing.
func TestTracedDriveFreshTrace(t *testing.T) {
	_, ts := testServer(t, assertd.Config{})
	createTenant(t, ts, "svc", assertd.TenantOptions{
		HeapMiB: 2,
		Trace:   &assertd.TraceOptions{Probability: 1},
	})
	submit(t, ts, "svc", steadySrc)

	res, _ := driveTraced(t, ts, "svc", 1, false, "")
	if len(res.TraceID) != 32 {
		t.Fatalf("fresh trace id = %q", res.TraceID)
	}
	if res.TraceSampled != trace.KeepProbability {
		t.Errorf("sampled reason = %q, want %q", res.TraceSampled, trace.KeepProbability)
	}

	// A malformed header is ignored, never an error.
	res2, _ := driveTraced(t, ts, "svc", 1, false, "ff-bogus-header-01")
	if len(res2.TraceID) != 32 || res2.TraceID == res.TraceID {
		t.Errorf("malformed traceparent: trace id = %q", res2.TraceID)
	}
}

// TestTraceEndpoints404 pins the error contract: tracing disabled and
// unknown trace IDs are both 404, not 500.
func TestTraceEndpoints404(t *testing.T) {
	_, ts := testServer(t, assertd.Config{})
	createTenant(t, ts, "dark", assertd.TenantOptions{HeapMiB: 2})
	doJSON(t, "GET", ts.URL+"/tenants/dark/traces", nil, http.StatusNotFound, nil)
	doJSON(t, "GET", ts.URL+"/tenants/dark/traces/0123456789abcdef0123456789abcdef", nil, http.StatusNotFound, nil)

	createTenant(t, ts, "lit", assertd.TenantOptions{HeapMiB: 2, Trace: &assertd.TraceOptions{Probability: 1}})
	doJSON(t, "GET", ts.URL+"/tenants/lit/traces/0123456789abcdef0123456789abcdef", nil, http.StatusNotFound, nil)

	// Invalid trace options are a 400 at create time.
	doJSON(t, "POST", ts.URL+"/tenants", assertd.CreateRequest{
		ID:      "bad",
		Options: assertd.TenantOptions{Trace: &assertd.TraceOptions{Probability: 2}},
	}, http.StatusBadRequest, nil)

	// A dropped trace (probability 0, nothing interesting) stores nothing
	// and stamps no sampled reason, but still returns its trace ID.
	createTenant(t, ts, "quiet", assertd.TenantOptions{HeapMiB: 2, Trace: &assertd.TraceOptions{}})
	submit(t, ts, "quiet", steadySrc)
	res, _ := driveTraced(t, ts, "quiet", 1, false, "")
	if res.TraceID == "" || res.TraceSampled != "" {
		t.Errorf("dropped trace: id=%q sampled=%q", res.TraceID, res.TraceSampled)
	}
	var sums []trace.Summary
	doJSON(t, "GET", ts.URL+"/tenants/quiet/traces", nil, http.StatusOK, &sums)
	if len(sums) != 0 {
		t.Errorf("dropped trace was stored: %+v", sums)
	}
}

// TestTraceStoreEvictionOverHTTP drives more kept traces than the
// configured capacity and asserts the store sheds oldest-first (satellite:
// eviction-order coverage at the service layer, not just the unit).
func TestTraceStoreEvictionOverHTTP(t *testing.T) {
	_, ts := testServer(t, assertd.Config{})
	createTenant(t, ts, "svc", assertd.TenantOptions{
		HeapMiB: 2,
		Trace:   &assertd.TraceOptions{Capacity: 2, Probability: 1},
	})
	submit(t, ts, "svc", steadySrc)

	var ids []string
	for i := 0; i < 3; i++ {
		res, _ := driveTraced(t, ts, "svc", 1, false, "")
		if res.TraceSampled == "" {
			t.Fatalf("drive %d not sampled at probability 1", i)
		}
		ids = append(ids, res.TraceID)
	}

	var sums []trace.Summary
	doJSON(t, "GET", ts.URL+"/tenants/svc/traces", nil, http.StatusOK, &sums)
	if len(sums) != 2 {
		t.Fatalf("stored traces = %d, want capacity 2", len(sums))
	}
	// Newest first; the oldest drive's trace is the one evicted.
	if sums[0].TraceID != ids[2] || sums[1].TraceID != ids[1] {
		t.Errorf("summaries order = [%s %s], want [%s %s]", sums[0].TraceID, sums[1].TraceID, ids[2], ids[1])
	}
	doJSON(t, "GET", ts.URL+"/tenants/svc/traces/"+ids[0], nil, http.StatusNotFound, nil)
	getTrace(t, ts, "svc", ids[1])
	getTrace(t, ts, "svc", ids[2])
}

// TestDeleteDuringTracedDrive races tenant deletion against in-flight
// traced drives (run under -race): every drive either completes with a
// trace ID or reports the tenant gone, and nothing deadlocks or touches
// freed tracing state.
func TestDeleteDuringTracedDrive(t *testing.T) {
	_, ts := testServer(t, assertd.Config{})
	createTenant(t, ts, "victim", assertd.TenantOptions{
		HeapMiB:    2,
		Provenance: "sampled",
		Trace:      &assertd.TraceOptions{Probability: 1},
	})
	submit(t, ts, "victim", leakerSrc)

	const upstream = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	var wg sync.WaitGroup
	var once sync.Once
	driving := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				req, err := http.NewRequest("POST", ts.URL+"/tenants/victim/drive",
					strings.NewReader(`{"requests":1}`))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set(trace.Header, upstream)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var res assertd.DriveResult
					if err := json.NewDecoder(resp.Body).Decode(&res); err == nil &&
						res.TraceID != "0af7651916cd43dd8448eb211c80319c" {
						t.Errorf("completed traced drive lost its trace: %q", res.TraceID)
					}
				case http.StatusNotFound:
				default:
					t.Errorf("traced drive during delete = %d", resp.StatusCode)
				}
				resp.Body.Close()
				once.Do(func() { close(driving) })
			}
		}()
	}
	<-driving
	doJSON(t, "DELETE", ts.URL+"/tenants/victim", nil, http.StatusOK, nil)
	wg.Wait()

	// The tenant is gone; its trace store must be unreachable, not stale.
	doJSON(t, "GET", ts.URL+"/tenants/victim/traces", nil, http.StatusNotFound, nil)
}
