// Package assertd hosts many isolated GC-assertion runtimes behind one
// HTTP/JSON service: gcassertd. Each tenant owns a full gcassert runtime —
// its own heap, collector configuration, assertion policy, and telemetry —
// and is driven over HTTP: submit a MiniJava program, drive request
// batches, stream violations and GC events, scrape per-tenant stats and
// Prometheus metrics.
//
// The isolation model is the runtime's own single-goroutine discipline
// made structural: every tenant has a service-loop goroutine that is the
// only code ever touching its runtime, and handlers reach it through a
// command channel. Tenants share nothing — no heap, no collector state, no
// tracer (the telemetry layer is fully instance-scoped) — so a tenant that
// exhausts its heap, halts on a violation, or burns its step budget fails
// its own request and nothing else. The only shared object is the server's
// metrics registry, where every series carries a tenant label.
package assertd

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gcassert/internal/sse"
	"gcassert/internal/telemetry"
	"gcassert/internal/version"
)

// Config configures a Server.
type Config struct {
	// InstanceID names this server in fleet exports; each tenant's runtime
	// composes it as "InstanceID/tenant" (version.Identity.Sub), so tenants
	// report as distinct instances under the host's name. Empty generates a
	// host-pid-random ID per tenant runtime.
	InstanceID string
	// FleetURL, when non-empty, points every tenant's fleet exporter at a
	// gcfleet collector (census snapshots, violation forensics).
	FleetURL string
	// MaxTenants bounds concurrent tenants (default 256).
	MaxTenants int
	// MaxHeapMiB caps any single tenant's heap (default 256).
	MaxHeapMiB int
	// DefaultHeapMiB sizes tenants that don't choose (default 16).
	DefaultHeapMiB int
	// Clock overrides the server's time source (default time.Now). Tenant
	// creation stamps, violation frames and SLO window accounting all read
	// it, so tests drive window expiry with a fake clock instead of sleeps.
	Clock func() time.Time
}

// Server errors the HTTP layer maps onto status codes.
var (
	// ErrTenantNotFound reports an unknown tenant ID.
	ErrTenantNotFound = errors.New("tenant not found")
	// ErrTenantExists reports a duplicate create.
	ErrTenantExists = errors.New("tenant already exists")
	// ErrServerFull reports the MaxTenants bound.
	ErrServerFull = errors.New("tenant limit reached")
	// ErrBadTenantID reports an invalid tenant name.
	ErrBadTenantID = errors.New("invalid tenant id (want 1-64 chars of [a-zA-Z0-9._-])")
)

// Server is the multi-tenant assertion service.
type Server struct {
	cfg Config
	reg *telemetry.Registry

	mu      sync.Mutex
	tenants map[string]*Tenant
	closed  bool

	tenantsGauge *telemetry.Gauge
	created      *telemetry.Counter
	deleted      *telemetry.Counter

	// Server-wide SLO alert stream: every tenant's alert transitions fan
	// out through one hub (GET /alerts), with a bounded replay ring so a
	// subscriber attaching after a burst still sees it.
	alerts sse.Hub

	// sloShip ships SLO report envelopes to the fleet collector (nil when
	// Config.FleetURL is empty).
	sloShip *sloShipper
}

// NewServer creates a server. Close it to shut every tenant down.
func NewServer(cfg Config) *Server {
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 256
	}
	if cfg.MaxHeapMiB <= 0 {
		cfg.MaxHeapMiB = 256
	}
	if cfg.DefaultHeapMiB <= 0 {
		cfg.DefaultHeapMiB = 16
	}
	if cfg.DefaultHeapMiB > cfg.MaxHeapMiB {
		cfg.DefaultHeapMiB = cfg.MaxHeapMiB
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	reg := telemetry.NewRegistry()
	s := &Server{
		cfg:          cfg,
		reg:          reg,
		tenants:      make(map[string]*Tenant),
		tenantsGauge: reg.Gauge("gcassertd_tenants", "Live tenants."),
		created:      reg.Counter("gcassertd_tenants_created_total", "Tenants created."),
		deleted:      reg.Counter("gcassertd_tenants_deleted_total", "Tenants deleted."),
	}
	s.alerts.ReplayLimit = alertReplay
	s.alerts.DropMetric = reg.Counter("gcassertd_alert_dropped_frames_total",
		"Alert-stream frames dropped on slow /alerts subscribers.")
	if cfg.FleetURL != "" {
		s.sloShip = newSLOShipper(cfg.FleetURL, version.NewIdentity(cfg.InstanceID))
	}
	return s
}

// Registry exposes the server's metrics registry (every per-tenant series
// carries a tenant label; series outlive their tenant, as Prometheus
// counters should).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// validTenantID enforces names that are safe in URL paths and metric
// labels.
func validTenantID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// CreateTenant provisions a tenant: a fresh runtime plus its service loop.
// The lock is held across construction so a duplicate create can never
// race two runtimes onto one ID.
func (s *Server) CreateTenant(id string, opts TenantOptions) (*Tenant, error) {
	if !validTenantID(id) {
		return nil, ErrBadTenantID
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrServerFull
	}
	if _, dup := s.tenants[id]; dup {
		return nil, fmt.Errorf("%w: %s", ErrTenantExists, id)
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		return nil, fmt.Errorf("%w (%d)", ErrServerFull, s.cfg.MaxTenants)
	}
	t, err := newTenant(s, id, opts)
	if err != nil {
		return nil, err
	}
	s.tenants[id] = t
	s.created.Inc()
	s.tenantsGauge.Set(int64(len(s.tenants)))
	return t, nil
}

// DeleteTenant stops a tenant's service loop and removes it. The call
// returns after the loop has fully exited (fleet exporter closed, SSE
// subscribers released), so a delete-then-recreate of the same ID is safe.
func (s *Server) DeleteTenant(id string) error {
	s.mu.Lock()
	t, ok := s.tenants[id]
	if ok {
		delete(s.tenants, id)
		s.deleted.Inc()
		s.tenantsGauge.Set(int64(len(s.tenants)))
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrTenantNotFound, id)
	}
	t.shutdown()
	return nil
}

// Tenant looks a tenant up by ID.
func (s *Server) Tenant(id string) (*Tenant, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[id]
	return t, ok
}

// List returns every tenant's cached stats snapshot, sorted by ID.
func (s *Server) List() []TenantStats {
	s.mu.Lock()
	ts := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	out := make([]TenantStats, len(ts))
	for i, t := range ts {
		out[i] = t.Stats()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Close deletes every tenant and rejects future creates. Safe to call more
// than once.
func (s *Server) Close() {
	s.mu.Lock()
	wasClosed := s.closed
	s.closed = true
	ts := make([]*Tenant, 0, len(s.tenants))
	for id, t := range s.tenants {
		ts = append(ts, t)
		delete(s.tenants, id)
	}
	s.tenantsGauge.Set(0)
	s.mu.Unlock()
	for _, t := range ts {
		s.deleted.Inc()
		t.shutdown()
	}
	if !wasClosed {
		s.alerts.Close()
		if s.sloShip != nil {
			s.sloShip.close()
		}
	}
}
