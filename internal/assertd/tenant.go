package assertd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"gcassert"
	"gcassert/internal/core"
	"gcassert/internal/minivm"
	"gcassert/internal/slo"
	"gcassert/internal/sse"
	"gcassert/internal/stats"
	"gcassert/internal/telemetry"
	"gcassert/internal/trace"
)

// TenantOptions is the per-tenant runtime configuration accepted on tenant
// creation. Every field is optional; the zero value is a sensible small
// tenant. The server clamps resource fields against its own limits, so a
// tenant can never configure itself past the host's per-tenant budget.
type TenantOptions struct {
	// HeapMiB sizes the tenant's managed heap in MiB (default
	// Config.DefaultHeapMiB, clamped to [1, Config.MaxHeapMiB]).
	HeapMiB int `json:"heap_mib,omitempty"`
	// Workers selects the mark-phase worker count (0/1 sequential).
	Workers int `json:"workers,omitempty"`
	// Provenance selects allocation-site provenance: "", "off", "sampled",
	// or "exhaustive".
	Provenance string `json:"provenance,omitempty"`
	// Generational selects the sticky-mark-bit generational mode.
	Generational bool `json:"generational,omitempty"`
	// MaxSteps bounds each guest request's executed instructions. 0 applies
	// the server default (defaultMaxSteps); there is no unlimited setting —
	// a tenant must not be able to pin its service loop forever.
	MaxSteps uint64 `json:"max_steps,omitempty"`
	// React maps assertion kinds ("assert-dead", "dead", ...) to reactions
	// ("log", "halt", "force"). Unlisted kinds log.
	React map[string]string `json:"react,omitempty"`
	// FlightRecorder enables the GC flight recorder.
	FlightRecorder bool `json:"flight_recorder,omitempty"`
	// Introspection enables the census/leak-ranking layer. Forced on when
	// the server has a fleet collector configured (census is what ships).
	Introspection bool `json:"introspection,omitempty"`
	// SLO declares the tenant's service-level objectives at creation time
	// (replaceable later via PUT /tenants/{id}/slo). Nil means no SLO: the
	// record seams reduce to one nil check and allocate nothing.
	SLO *slo.Spec `json:"slo,omitempty"`
	// Trace enables request-to-GC tracing with tail-based sampling. Nil
	// means tracing off: the drive path pays one atomic load per batch and
	// one nil check per request, and allocates nothing.
	Trace *TraceOptions `json:"trace,omitempty"`
}

// defaultMaxSteps bounds a guest request when the tenant does not choose a
// bound. Isolation requires some bound: the service loop is the tenant's
// only execution resource, and an infinite guest loop would otherwise hold
// it forever.
const defaultMaxSteps = 50_000_000

// parseReaction maps the wire spelling of a reaction.
func parseReaction(s string) (gcassert.Reaction, error) {
	switch s {
	case "log":
		return gcassert.ReactLog, nil
	case "halt":
		return gcassert.ReactHalt, nil
	case "force":
		return gcassert.ReactForce, nil
	}
	return gcassert.ReactLog, fmt.Errorf("unknown reaction %q (want log, halt or force)", s)
}

// parseKind maps the wire spelling of an assertion kind, accepting both the
// stable label ("assert-dead") and its short form ("dead").
func parseKind(s string) (gcassert.Kind, error) {
	for k := gcassert.Kind(0); k < core.NumKinds; k++ {
		label := k.String()
		if s == label || "assert-"+s == label || (k == core.KindImproperOwnership && s == "improper-ownership") {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown assertion kind %q", s)
}

// policy builds the per-kind reaction policy from the wire map.
func (o TenantOptions) policy() (gcassert.Policy, error) {
	var p gcassert.Policy
	for ks, rs := range o.React {
		k, err := parseKind(ks)
		if err != nil {
			return p, err
		}
		r, err := parseReaction(rs)
		if err != nil {
			return p, err
		}
		p[k] = r
	}
	return p, nil
}

// Errors the HTTP layer maps onto status codes.
var (
	// ErrBadProgram wraps guest program compile/load failures (HTTP 400).
	ErrBadProgram = errors.New("bad program")
	// ErrNoProgram reports a drive against a tenant with no program (409).
	ErrNoProgram = errors.New("no program submitted")
	// errTenantGone reports a command raced with tenant deletion (404).
	errTenantGone = errors.New("tenant deleted")
)

// Tenant is one isolated guest runtime hosted by a Server. All use of the
// underlying gcassert.Runtime happens on the tenant's own service-loop
// goroutine — the runtime's single-goroutine discipline is the isolation
// boundary — and HTTP handlers talk to it by sending commands over a
// channel. Concurrent requests against one tenant therefore serialize, and
// the queueing they experience is exactly the per-tenant service latency
// the load driver measures.
type Tenant struct {
	id      string
	opts    TenantOptions
	created time.Time
	srv     *Server
	clock   func() time.Time

	// sloT is the tenant's SLO tracker; nil when no SLO is configured, so
	// the record seams cost one atomic load on the off path. Swapped whole
	// on PUT/DELETE of the SLO (the tracker itself is concurrency-safe).
	sloT atomic.Pointer[slo.Tracker]

	// trc is the tenant's tracing state (store + tail sampler); nil when the
	// tenant was created without a trace config, so the drive-path seam is
	// one atomic load. Set once at creation, never swapped.
	trc atomic.Pointer[tenantTracer]
	// activeTrace is the span builder for the traced drive batch currently
	// executing on the service loop, nil between batches. Loop-goroutine
	// only — the GC event and violation taps read it inside the
	// stop-the-world window, which runs on that same goroutine.
	activeTrace *trace.Builder

	cmds chan tenantCmd
	stop chan struct{} // closed by Server.DeleteTenant
	done chan struct{} // closed when the service loop has fully exited

	stopOnce sync.Once

	tel *telemetry.Tracer // concurrency-safe views (pause histogram, SSE)
	hub sse.Hub           // violation SSE stream

	// Cross-goroutine counters (written on the loop, read anywhere).
	requests   atomic.Uint64
	failures   atomic.Uint64
	violations atomic.Uint64
	violSeq    atomic.Uint64

	// Loop-goroutine-only state (no locking: single writer, snapshotted).
	latency    stats.LogHist
	violByKind [core.NumKinds]uint64
	costNs     [core.NumKinds]int64
	costChecks [core.NumKinds]uint64

	mu   sync.Mutex
	snap TenantStats // cached; refreshed on the loop after every command

	metrics tenantMetrics
}

// tenantMetrics are the tenant's label-bound series in the server registry.
type tenantMetrics struct {
	requests         *telemetry.Counter
	failures         *telemetry.Counter
	viols            *telemetry.Counter
	dropped          *telemetry.Counter
	latency          *telemetry.Histogram
	liveWords        *telemetry.Gauge
	collections      *telemetry.Gauge
	pauseP99Ns       *telemetry.Gauge
	alertTransitions *telemetry.Counter
}

type cmdResult struct {
	v   any
	err error
}

type tenantCmd struct {
	fn    func(*guest) (any, error)
	reply chan cmdResult
}

// guest is the loop-private execution state: the runtime plus the currently
// loaded program image. It exists only on the service-loop goroutine.
type guest struct {
	t  *Tenant
	vm *gcassert.Runtime
	im *minivm.Image
}

// newTenant builds the runtime and starts the service loop. The runtime is
// constructed here and handed to the loop goroutine; the goroutine start
// is the happens-before edge, and nothing on this side touches it again.
func newTenant(s *Server, id string, topts TenantOptions) (*Tenant, error) {
	pol, err := topts.policy()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadProgram, err)
	}
	switch topts.Provenance {
	case "", "off", "sampled", "exhaustive":
	default:
		return nil, fmt.Errorf("%w: unknown provenance mode %q", ErrBadProgram, topts.Provenance)
	}
	// Clamp resources to the host's per-tenant budget.
	if topts.HeapMiB <= 0 {
		topts.HeapMiB = s.cfg.DefaultHeapMiB
	}
	if topts.HeapMiB > s.cfg.MaxHeapMiB {
		topts.HeapMiB = s.cfg.MaxHeapMiB
	}
	if topts.HeapMiB < 1 {
		topts.HeapMiB = 1
	}
	if topts.MaxSteps == 0 || topts.MaxSteps > defaultMaxSteps {
		topts.MaxSteps = defaultMaxSteps
	}
	if s.cfg.FleetURL != "" {
		topts.Introspection = true // census is the fleet payload
	}
	if topts.SLO != nil {
		if err := topts.SLO.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSLO, err)
		}
	}
	if topts.Trace != nil {
		if err := topts.Trace.validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadProgram, err)
		}
	}

	t := &Tenant{
		id:      id,
		opts:    topts,
		created: s.cfg.Clock(),
		srv:     s,
		clock:   s.cfg.Clock,
		cmds:    make(chan tenantCmd),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if topts.SLO != nil {
		tr, err := slo.New(*topts.SLO, t.clock)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSLO, err)
		}
		t.sloT.Store(tr)
	}
	if topts.Trace != nil {
		t.trc.Store(newTenantTracer(topts.Trace))
	}
	lbl := telemetry.Label{Name: "tenant", Value: id}
	t.metrics = tenantMetrics{
		requests:         s.reg.Counter("gcassertd_requests_total", "Guest requests run, by tenant.", lbl),
		failures:         s.reg.Counter("gcassertd_request_failures_total", "Guest requests that failed (VM error, OOM, halt), by tenant.", lbl),
		viols:            s.reg.Counter("gcassertd_violations_total", "Assertion violations reported, by tenant.", lbl),
		dropped:          s.reg.Counter("gcassertd_stream_dropped_frames_total", "Violation-stream frames dropped on slow subscribers, by tenant.", lbl),
		latency:          s.reg.Histogram("gcassertd_request_seconds", "Guest request service time, by tenant.", telemetry.DefaultPauseBuckets(), lbl),
		liveWords:        s.reg.Gauge("gcassertd_heap_live_words", "Live heap words after the last command, by tenant.", lbl),
		collections:      s.reg.Gauge("gcassertd_gc_collections", "Completed collections, by tenant.", lbl),
		pauseP99Ns:       s.reg.Gauge("gcassertd_gc_pause_p99_ns", "p99 GC pause in nanoseconds, by tenant.", lbl),
		alertTransitions: s.reg.Counter("gcassertd_slo_alert_transitions_total", "SLO alert state transitions published, by tenant.", lbl),
	}
	t.hub.DropMetric = t.metrics.dropped

	vm := gcassert.New(gcassert.Options{
		HeapBytes:       topts.HeapMiB << 20,
		Infrastructure:  true,
		Reporter:        core.FuncReporter(t.onViolation),
		Policy:          pol,
		Generational:    topts.Generational,
		Workers:         topts.Workers,
		Telemetry:       true,
		CostAttribution: true,
		Provenance:      topts.Provenance,
		FlightRecorder:  topts.FlightRecorder,
		Introspection:   topts.Introspection,
		InstanceID:      s.cfg.InstanceID,
		Tenant:          id,
		FleetURL:        s.cfg.FleetURL,
	})
	t.tel = vm.Telemetry()
	t.tel.OnRecord(t.onGCEvent)

	// Snapshot once before the handoff, so the create response already
	// carries a populated stats document; from here on only the loop
	// goroutine touches the runtime.
	g := &guest{t: t, vm: vm}
	t.refreshSnapshot(g)
	go t.loop(g)
	return t, nil
}

// loop is the tenant's service loop: the one goroutine that may touch the
// runtime. It executes commands in arrival order, refreshes the cached
// stats snapshot after each, and on shutdown closes the violation hub (so
// SSE handlers return) and the fleet exporter before signalling done.
func (t *Tenant) loop(g *guest) {
	defer close(t.done)
	defer g.vm.CloseFleet()
	defer t.hub.Close()
	for {
		select {
		case <-t.stop:
			return
		case c := <-t.cmds:
			v, err := runCmd(g, c.fn)
			t.refreshSnapshot(g)
			c.reply <- cmdResult{v, err}
		}
	}
}

// runCmd executes one command with panic isolation: a guest that OOMs its
// heap or halts on a violation (ReactHalt) unwinds to here, is converted to
// an error, and the tenant — and every other tenant — keeps serving.
func runCmd(g *guest, fn func(*guest) (any, error)) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = guestError(r)
		}
	}()
	return fn(g)
}

// guestError converts a recovered guest panic into an error.
func guestError(r any) error {
	switch e := r.(type) {
	case *gcassert.HaltError:
		return fmt.Errorf("assertion halt: %v", e)
	case error:
		return fmt.Errorf("guest fault: %w", e)
	default:
		return fmt.Errorf("guest panic: %v", r)
	}
}

// do sends a command to the service loop and waits for its result. It never
// blocks past tenant deletion: both the send and the receive also select on
// done, so handlers racing a DELETE get errTenantGone instead of hanging.
func (t *Tenant) do(fn func(*guest) (any, error)) (any, error) {
	c := tenantCmd{fn: fn, reply: make(chan cmdResult, 1)}
	select {
	case t.cmds <- c:
	case <-t.done:
		return nil, errTenantGone
	}
	select {
	case r := <-c.reply:
		return r.v, r.err
	case <-t.done:
		return nil, errTenantGone
	}
}

// shutdown asks the loop to exit and waits until it has.
func (t *Tenant) shutdown() {
	t.stopOnce.Do(func() { close(t.stop) })
	<-t.done
}

// ID returns the tenant's name.
func (t *Tenant) ID() string { return t.id }

// onViolation is the tenant's reporter. It runs on the service-loop
// goroutine inside the stop-the-world collection, so it must stay brief and
// must never block: count, marshal once, publish non-blocking.
func (t *Tenant) onViolation(v *gcassert.Violation) {
	seq := t.violSeq.Add(1)
	t.violations.Add(1)
	t.metrics.viols.Inc()
	if int(v.Kind) < len(t.violByKind) {
		t.violByKind[v.Kind]++
	}
	frame := ViolationFrame{
		Tenant:   t.id,
		Seq:      seq,
		Kind:     v.Kind.String(),
		GC:       v.GC,
		TypeName: v.TypeName,
		Site:     v.Site,
		Root:     v.Root,
		Message:  v.Message,
		UnixNs:   t.clock().UnixNano(),
	}
	for _, step := range v.Path {
		s := step.TypeName
		if step.Field != "" {
			s += "." + step.Field
		}
		frame.Path = append(frame.Path, s)
	}
	if b, err := json.Marshal(&frame); err == nil {
		t.hub.Publish(b)
	}
	t.traceTapViolation(v)
}

// ViolationFrame is one violation as streamed on the tenant's SSE feed.
type ViolationFrame struct {
	Tenant   string   `json:"tenant"`
	Seq      uint64   `json:"seq"`
	Kind     string   `json:"kind"`
	GC       uint64   `json:"gc"`
	TypeName string   `json:"type"`
	Site     string   `json:"site,omitempty"`
	Root     string   `json:"root,omitempty"`
	Path     []string `json:"path,omitempty"`
	Message  string   `json:"message,omitempty"`
	UnixNs   int64    `json:"unix_ns"`
}

// onGCEvent accumulates per-kind assertion cost from each collection's
// event and feeds the SLO pause/cost objectives. Runs on the service loop
// during the stop-the-world window.
func (t *Tenant) onGCEvent(ev *telemetry.Event) {
	var assertNs int64
	for _, c := range ev.Costs {
		assertNs += c.Ns
		for k := gcassert.Kind(0); k < core.NumKinds; k++ {
			if k.String() == c.Kind {
				t.costChecks[k] += c.Checks
				t.costNs[k] += c.Ns
				break
			}
		}
	}
	t.sloRecordPause(ev.TotalNs, assertNs)
	t.traceTapEvent(ev)
}

// AssertCostStat is one kind's cumulative attributed GC-time cost.
type AssertCostStat struct {
	Kind   string `json:"kind"`
	Checks uint64 `json:"checks"`
	Ns     int64  `json:"ns"`
}

// LatencyNs is a latency tail summary in nanoseconds.
type LatencyNs struct {
	Count uint64 `json:"count"`
	P50   int64  `json:"p50_ns"`
	P99   int64  `json:"p99_ns"`
	P999  int64  `json:"p999_ns"`
	Max   int64  `json:"max_ns"`
}

// TenantStats is the per-tenant stats document served on /tenants/{id} and
// folded into /tenants. It is a cached snapshot refreshed by the service
// loop after every command — the collector and heap stats it summarizes are
// not concurrency-safe, so handlers never read the runtime directly.
type TenantStats struct {
	ID            string        `json:"id"`
	InstanceID    string        `json:"instance_id"`
	CreatedUnixNs int64         `json:"created_unix_ns"`
	Options       TenantOptions `json:"options"`
	Program       bool          `json:"program"`

	Requests   uint64 `json:"requests"`
	Failures   uint64 `json:"failures"`
	Violations uint64 `json:"violations"`

	ViolationsByKind map[string]uint64 `json:"violations_by_kind,omitempty"`
	AssertCosts      []AssertCostStat  `json:"assert_costs,omitempty"`

	Latency LatencyNs `json:"latency"`

	HeapLiveObjects uint64 `json:"heap_live_objects"`
	HeapLiveWords   uint64 `json:"heap_live_words"`
	Collections     uint64 `json:"collections"`
	GCTotalNs       int64  `json:"gc_total_ns"`
	PauseP50Ns      int64  `json:"gc_pause_p50_ns"`
	PauseP99Ns      int64  `json:"gc_pause_p99_ns"`
	MaxPauseNs      int64  `json:"gc_pause_max_ns"`

	StreamDropped uint64 `json:"stream_dropped_frames"`

	// TracesStored counts traces currently retained by the tail sampler
	// (only present when the tenant has tracing enabled).
	TracesStored int `json:"traces_stored,omitempty"`

	// SLO is the tenant's SLO status as of the last snapshot refresh; nil
	// when no SLO is configured. GET /tenants/{id}/slo serves a fresh
	// evaluation instead of this cached one.
	SLO *slo.Status `json:"slo,omitempty"`
}

// refreshSnapshot rebuilds the cached stats document. Loop goroutine only.
func (t *Tenant) refreshSnapshot(g *guest) {
	gc := g.vm.GCStats()
	hs := g.vm.HeapStats()
	p50, _, p99 := t.tel.PauseHistogram().Summary()
	lp50, lp99, lp999, lmax := t.latency.Tail()

	s := TenantStats{
		ID:            t.id,
		InstanceID:    g.vm.Identity().InstanceID,
		CreatedUnixNs: t.created.UnixNano(),
		Options:       t.opts,
		Program:       g.im != nil,
		Requests:      t.requests.Load(),
		Failures:      t.failures.Load(),
		Violations:    t.violations.Load(),
		Latency: LatencyNs{
			Count: t.latency.Count(),
			P50:   lp50.Nanoseconds(),
			P99:   lp99.Nanoseconds(),
			P999:  lp999.Nanoseconds(),
			Max:   lmax.Nanoseconds(),
		},
		HeapLiveObjects: hs.LiveObjects,
		HeapLiveWords:   hs.LiveWords,
		Collections:     gc.Collections,
		GCTotalNs:       gc.TotalGCTime.Nanoseconds(),
		PauseP50Ns:      p50.Nanoseconds(),
		PauseP99Ns:      p99.Nanoseconds(),
		MaxPauseNs:      gc.MaxPause.Nanoseconds(),
		StreamDropped:   t.hub.Dropped(),
	}
	for k := gcassert.Kind(0); k < core.NumKinds; k++ {
		if n := t.violByKind[k]; n > 0 {
			if s.ViolationsByKind == nil {
				s.ViolationsByKind = make(map[string]uint64)
			}
			s.ViolationsByKind[k.String()] = n
		}
		if t.costChecks[k] > 0 || t.costNs[k] > 0 {
			s.AssertCosts = append(s.AssertCosts, AssertCostStat{
				Kind: k.String(), Checks: t.costChecks[k], Ns: t.costNs[k],
			})
		}
	}
	t.metrics.liveWords.Set(int64(hs.LiveWords))
	t.metrics.collections.Set(int64(gc.Collections))
	t.metrics.pauseP99Ns.Set(p99.Nanoseconds())

	if tr := t.sloT.Load(); tr != nil {
		st, evs := tr.Status()
		t.publishAlerts(evs)
		t.updateSLOMetrics(&st)
		s.SLO = &st
	}
	if tr := t.trc.Load(); tr != nil {
		s.TracesStored = tr.store.Len()
	}

	t.mu.Lock()
	t.snap = s
	t.mu.Unlock()
}

// Stats returns the cached stats snapshot. Safe from any goroutine.
func (t *Tenant) Stats() TenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snap
}

// ProgramInfo reports a successfully submitted program.
type ProgramInfo struct {
	Classes int `json:"classes"`
	Methods int `json:"methods"`
}

// Submit compiles src and loads it into the tenant's runtime, replacing the
// current program. Compile and load failures wrap ErrBadProgram. A replaced
// program's classes stay registered as heap types; resubmitting a program
// whose class shapes conflict with an earlier submission is a load error.
func (t *Tenant) Submit(src string) (ProgramInfo, error) {
	v, err := t.do(func(g *guest) (any, error) {
		unit, err := minivm.Compile(src)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadProgram, err)
		}
		im, err := minivm.Load(g.vm, unit, io.Discard)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadProgram, err)
		}
		im.MaxSteps = t.opts.MaxSteps
		g.im = im
		return ProgramInfo{Classes: len(unit.Classes), Methods: len(unit.Methods)}, nil
	})
	if err != nil {
		return ProgramInfo{}, err
	}
	return v.(ProgramInfo), nil
}

// DriveResult reports one drive batch: how many guest requests ran, how
// many failed, and how many assertion violations the batch produced
// (including any from the optional trailing forced collection).
type DriveResult struct {
	Requests   int    `json:"requests"`
	Failures   uint64 `json:"failures"`
	Violations uint64 `json:"violations"`
	ElapsedNs  int64  `json:"elapsed_ns"`
	LastError  string `json:"last_error,omitempty"`

	// TraceID and Traceparent identify the batch's trace when the tenant has
	// tracing enabled (Traceparent is the W3C header value naming the trace
	// root span, also echoed as a response header by the HTTP layer).
	// TraceSampled is the tail sampler's keep reason ("violation", "slo-bad",
	// "slow-pause", "probability"); empty means the trace was dropped and
	// TraceID will not resolve against the store.
	TraceID      string `json:"trace_id,omitempty"`
	Traceparent  string `json:"traceparent,omitempty"`
	TraceSampled string `json:"trace_sampled,omitempty"`
}

// Drive runs n guest requests back to back on the service loop, optionally
// forcing a collection afterwards (so end-of-request assert-dead style
// assertions are checked even when the batch didn't fill the heap).
func (t *Tenant) Drive(n int, collect bool) (DriveResult, error) {
	return t.DriveTraced(n, collect, trace.SpanContext{})
}

// DriveTraced is Drive carrying a remote trace parent (from an incoming
// traceparent header; the zero SpanContext starts a fresh trace). When the
// tenant has tracing enabled, each request becomes a child span, the
// runtime's request tag is set around its execution so collections are
// stamped with the request they interrupted, and the finished span tree
// goes through the tail sampler. With tracing off the parent is ignored.
func (t *Tenant) DriveTraced(n int, collect bool, parent trace.SpanContext) (DriveResult, error) {
	v, err := t.do(func(g *guest) (any, error) {
		if g.im == nil {
			return nil, ErrNoProgram
		}
		res := DriveResult{Requests: n}
		v0 := t.violations.Load()
		start := time.Now()
		tb := t.traceBegin(parent, n, collect)
		if tb != nil {
			// A guest panic escaping the batch must not leave a stale
			// builder installed for the next command's collections.
			defer func() { t.activeTrace = nil }()
		}
		for i := 0; i < n; i++ {
			// Per-request SLO accounting: only touch the violation counter
			// when a tracker or tracer is live, so the off path stays one
			// nil check.
			sloOn := t.sloT.Load() != nil
			var pv uint64
			if sloOn || tb != nil {
				pv = t.violations.Load()
			}
			g.im.ResetSteps() // per-request step budget
			t0 := time.Now()
			if tb != nil {
				span := tb.StartRequest(t0.UnixNano())
				g.vm.SetRequestTag(span.String())
			}
			err := g.runOne()
			d := time.Since(t0)
			t.latency.Observe(d)
			t.metrics.latency.Observe(d)
			t.requests.Add(1)
			t.metrics.requests.Inc()
			var fail uint64
			if err != nil {
				t.failures.Add(1)
				t.metrics.failures.Inc()
				res.Failures++
				res.LastError = err.Error()
				fail = 1
			}
			// The SLO fold judges the batch bad at record time; the tail
			// sampler consumes that verdict per request span.
			bad := false
			if sloOn {
				bad = t.sloRecordRequests(1, fail, t.violations.Load()-pv)
			}
			if tb != nil {
				g.vm.SetRequestTag("")
				emsg := ""
				if err != nil {
					emsg = err.Error()
				}
				tb.EndRequest(t0.UnixNano()+d.Nanoseconds(), emsg, bad, int(t.violations.Load()-pv))
			}
		}
		if collect {
			vc := t.violations.Load()
			if err := g.collectOne(); err != nil {
				res.Failures++
				res.LastError = err.Error()
			}
			// Violations from the trailing forced collection still spend
			// the violation budget, attributed to no particular request.
			if d := t.violations.Load() - vc; d > 0 {
				t.sloRecordRequests(0, 0, d)
			}
		}
		res.Violations = t.violations.Load() - v0
		res.ElapsedNs = time.Since(start).Nanoseconds()
		if tb != nil {
			t.traceFinish(tb, &res)
		}
		return res, nil
	})
	if err != nil {
		return DriveResult{}, err
	}
	return v.(DriveResult), nil
}

// Collect forces one collection on the service loop.
func (t *Tenant) Collect() error {
	_, err := t.do(func(g *guest) (any, error) {
		return nil, g.collectOne()
	})
	return err
}

// runOne executes one guest request with per-request panic isolation: a
// heap OOM or a ReactHalt violation fails this request, not the tenant.
func (g *guest) runOne() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = guestError(r)
		}
	}()
	return g.im.Run()
}

// collectOne forces a collection with the same isolation (ReactHalt
// violations surface as errors).
func (g *guest) collectOne() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = guestError(r)
		}
	}()
	g.vm.Collect()
	return nil
}

// SubscribeViolations subscribes to the tenant's violation stream. ok is
// false when the tenant is already deleted.
func (t *Tenant) SubscribeViolations(buf int) (frames <-chan []byte, cancel func(), ok bool) {
	return t.hub.Subscribe(buf)
}

// SubscribeEvents subscribes to the tenant's live GC event feed (the
// telemetry tracer's own hub — concurrency-safe, same drop policy).
func (t *Tenant) SubscribeEvents(buf int) (<-chan []byte, func()) {
	return t.tel.SubscribeLive(buf)
}

// Events returns the tenant's retained GC event trace.
func (t *Tenant) Events() []telemetry.Event { return t.tel.Events() }
