package assertd

import (
	"testing"
	"time"

	"gcassert/internal/slo"
)

// BenchmarkSLOOff is the acceptance gate for the SLO-disabled record path:
// with no SLO configured, sloRecordRequests and sloRecordPause must reduce
// to an atomic load and a nil check — zero allocations — so tenants that
// never opt in pay nothing on the request and GC paths. Self-asserted
// in-line like the other *Off gates so `go test -bench BenchmarkSLOOff`
// fails loudly on a regression.
func BenchmarkSLOOff(b *testing.B) {
	s := NewServer(Config{})
	defer s.Close()
	tn, err := s.CreateTenant("bench", TenantOptions{})
	if err != nil {
		b.Fatal(err)
	}

	allocs := testing.AllocsPerRun(1000, func() {
		tn.sloRecordRequests(1, 0, 0)
		tn.sloRecordPause(1_000_000, 10_000)
	})
	if allocs > 0.0001 {
		b.Fatalf("SLO-off record path allocates %.4f times/op, want 0", allocs)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn.sloRecordRequests(1, 0, 0)
		tn.sloRecordPause(1_000_000, 10_000)
	}
}

// BenchmarkSLORecord measures the enabled-mode cost of one request record
// (ring add + two-rule evaluation) for the EXPERIMENTS overhead table.
func BenchmarkSLORecord(b *testing.B) {
	s := NewServer(Config{})
	defer s.Close()
	spec := &slo.Spec{
		Window:     slo.Duration(time.Hour),
		Objectives: []slo.Objective{{Kind: slo.KindViolationRate, MaxPerMillion: 100}},
	}
	tn, err := s.CreateTenant("bench", TenantOptions{SLO: spec})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn.sloRecordRequests(1, 0, 0)
	}
}
