package assertd

import (
	"sync"
	"sync/atomic"

	"gcassert/internal/telemetry"
)

// hub fans pre-marshaled frames out to SSE subscribers. It is the tenant's
// violation stream, and it follows the same backpressure policy as the
// telemetry live feed (PR 6): publishing happens on the tenant's service
// goroutine — often inside a stop-the-world collection — so it must never
// block. Sends are non-blocking; a subscriber that cannot keep up loses
// frames, and every loss is counted on the tenant's dropped-frames metric,
// which is the visible cost of the never-block-the-tenant rule.
//
// Unlike the telemetry liveHub, a tenant hub can close: deleting the tenant
// closes every subscriber channel, which ends the SSE handlers cleanly.
type hub struct {
	mu     sync.Mutex
	subs   map[chan []byte]struct{}
	closed bool

	dropped       atomic.Uint64
	droppedMetric *telemetry.Counter
}

// subscribe registers a subscriber with the given channel buffer (min 1).
// It returns false when the hub is already closed (tenant deleted); the
// cancel function is idempotent and closes the channel, so readers may
// range over it.
func (h *hub) subscribe(buf int) (<-chan []byte, func(), bool) {
	if buf < 1 {
		buf = 1
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, nil, false
	}
	ch := make(chan []byte, buf)
	if h.subs == nil {
		h.subs = make(map[chan []byte]struct{})
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			// close() may have won the race and already closed the channel.
			if _, live := h.subs[ch]; live {
				delete(h.subs, ch)
				close(ch)
			}
			h.mu.Unlock()
		})
	}
	return ch, cancel, true
}

// publish sends one frame to every subscriber, dropping on full channels.
func (h *hub) publish(frame []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- frame:
		default:
			h.dropped.Add(1)
			if h.droppedMetric != nil {
				h.droppedMetric.Inc()
			}
		}
	}
}

// close closes every subscriber channel and rejects future subscriptions.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}

// droppedFrames reports frames lost to slow subscribers.
func (h *hub) droppedFrames() uint64 { return h.dropped.Load() }
