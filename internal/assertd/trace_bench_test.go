package assertd

import (
	"testing"

	"gcassert"
	"gcassert/internal/telemetry"
	"gcassert/internal/trace"
)

// BenchmarkTracingOff is the acceptance gate for the tracing-disabled hot
// path: with no Trace options configured, traceBegin must reduce to one
// atomic load plus a nil check, and the per-event/per-violation taps to one
// nil check each — zero allocations — so tenants that never opt in pay
// nothing per drive, per collection, or per violation. Self-asserted
// in-line like BenchmarkSLOOff so `go test -bench BenchmarkTracingOff`
// fails loudly on a regression.
func BenchmarkTracingOff(b *testing.B) {
	s := NewServer(Config{})
	defer s.Close()
	tn, err := s.CreateTenant("bench", TenantOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if tb := tn.traceBegin(trace.SpanContext{}, 1, false); tb != nil {
		b.Fatal("traceBegin returned a builder for an untraced tenant")
	}

	ev := &telemetry.Event{}
	v := &gcassert.Violation{}
	allocs := testing.AllocsPerRun(1000, func() {
		tn.traceBegin(trace.SpanContext{}, 1, false)
		tn.traceTapEvent(ev)
		tn.traceTapViolation(v)
	})
	if allocs > 0.0001 {
		b.Fatalf("tracing-off path allocates %.4f times/op, want 0", allocs)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn.traceBegin(trace.SpanContext{}, 1, false)
		tn.traceTapEvent(ev)
		tn.traceTapViolation(v)
	}
}

// BenchmarkTracingOn measures the enabled-mode cost of building one traced
// request (span open/close plus one GC event tap) for the EXPERIMENTS
// overhead table. The builder is recreated each iteration the way a drive
// batch would, but sampling always drops, isolating build cost from store
// cost.
func BenchmarkTracingOn(b *testing.B) {
	s := NewServer(Config{})
	defer s.Close()
	tn, err := s.CreateTenant("bench", TenantOptions{Trace: &TraceOptions{Probability: 0}})
	if err != nil {
		b.Fatal(err)
	}

	ev := &telemetry.Event{StartUnixNs: 1000, TotalNs: 100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb := tn.traceBegin(trace.SpanContext{}, 1, false)
		tb.StartRequest(int64(i))
		tn.traceTapEvent(ev)
		tb.EndRequest(int64(i)+10, "", false, 0)
		tn.activeTrace = nil
	}
}

// benchSrc is a small violation-free guest for the drive-level overhead
// rows of the EXPERIMENTS tracing table.
const benchSrc = `
class Node { Node next; }
class Main {
  void main() {
    Node g = null;
    int j = 0;
    while (j < 16) { Node t = new Node(); t.next = g; g = t; j = j + 1; }
    g = null;
    gc();
  }
}`

// benchDrive measures one full service-loop drive per iteration under the
// given tenant options: the end-to-end number the per-seam benchmarks
// decompose.
func benchDrive(b *testing.B, topts TenantOptions) {
	s := NewServer(Config{})
	defer s.Close()
	tn, err := s.CreateTenant("bench", topts)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tn.Submit(benchSrc); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tn.Drive(1, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDriveUntraced(b *testing.B) {
	benchDrive(b, TenantOptions{HeapMiB: 2})
}

func BenchmarkDriveTracedSampledOut(b *testing.B) {
	benchDrive(b, TenantOptions{HeapMiB: 2, Trace: &TraceOptions{Probability: 0}})
}

func BenchmarkDriveTracedKept(b *testing.B) {
	benchDrive(b, TenantOptions{HeapMiB: 2, Trace: &TraceOptions{Probability: 1}})
}
