package assertd

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"gcassert"
	"gcassert/internal/fleet"
	"gcassert/internal/telemetry"
	"gcassert/internal/trace"
)

// ErrNoTracing reports a trace query against a tenant created without a
// trace config (HTTP 404: /tenants/{id}/traces does not exist).
var ErrNoTracing = errors.New("tracing not enabled")

// ErrNoTrace reports a lookup of a trace ID the tenant's store does not
// hold — the trace was dropped by the tail sampler, or evicted (HTTP 404).
var ErrNoTrace = errors.New("no such trace")

// TraceOptions is a tenant's request-to-GC tracing configuration, accepted
// on tenant creation. A nil TraceOptions means tracing off: the drive path
// then pays one atomic load per batch and one nil check per request, and
// allocates nothing (BenchmarkTracingOff pins this).
type TraceOptions struct {
	// Capacity bounds the tenant's stored traces; the store evicts oldest
	// first. 0 applies trace.DefaultStoreCap.
	Capacity int `json:"capacity,omitempty"`
	// SlowPauseNs always keeps any trace containing a collection whose
	// stop-the-world pause reaches this many nanoseconds. 0 disables the
	// criterion. Violations and SLO-bad requests are always kept regardless.
	SlowPauseNs int64 `json:"slow_pause_ns,omitempty"`
	// Probability in [0, 1] keeps that fraction of the traces matching no
	// always-keep criterion (the healthy, fast, quiet ones).
	Probability float64 `json:"probability,omitempty"`
}

func (o *TraceOptions) validate() error {
	if o.Capacity < 0 {
		return fmt.Errorf("trace capacity must be non-negative (got %d)", o.Capacity)
	}
	if o.SlowPauseNs < 0 {
		return fmt.Errorf("trace slow_pause_ns must be non-negative (got %d)", o.SlowPauseNs)
	}
	if o.Probability < 0 || o.Probability > 1 {
		return fmt.Errorf("trace probability must be in [0, 1] (got %g)", o.Probability)
	}
	return nil
}

// tenantTracer is the tenant's tracing state: the bounded trace store plus
// the tail sampler. Held behind an atomic pointer (nil = off) exactly like
// the SLO tracker, so the hot-path seam is one load.
type tenantTracer struct {
	store   *trace.Store
	sampler trace.Sampler
}

func newTenantTracer(o *TraceOptions) *tenantTracer {
	return &tenantTracer{
		store:   trace.NewStore(o.Capacity),
		sampler: trace.Sampler{SlowPauseNs: o.SlowPauseNs, Probability: o.Probability},
	}
}

// traceBegin is the batch-path tracing seam: nil (one atomic load, zero
// allocations) when the tenant has no trace config, otherwise a live span
// builder for the batch, installed as the loop's active trace so the GC
// event and violation taps feed it. Loop goroutine only.
func (t *Tenant) traceBegin(parent trace.SpanContext, n int, collect bool) *trace.Builder {
	if t.trc.Load() == nil {
		return nil
	}
	b := trace.NewBuilder(parent, t.id, t.srv.cfg.InstanceID, "drive", time.Now().UnixNano())
	b.RootAttr("requests", n)
	b.RootAttr("collect", collect)
	t.activeTrace = b
	return b
}

// traceTapEvent feeds a collection's telemetry event to the active trace,
// if any. Called from onGCEvent on the service loop inside the
// stop-the-world window — one nil check when no traced batch is running.
func (t *Tenant) traceTapEvent(ev *telemetry.Event) {
	if b := t.activeTrace; b != nil {
		b.GCEvent(ev)
	}
}

// traceTapViolation feeds a violation report to the active trace, if any.
// Same discipline as traceTapEvent: loop goroutine, inside the pause, one
// nil check when off.
func (t *Tenant) traceTapViolation(v *gcassert.Violation) {
	if b := t.activeTrace; b != nil {
		b.Violation(v.Kind.String(), v.TypeName, v.Site, v.Root, v.Message, t.clock().UnixNano())
	}
}

// traceFinish closes out a traced batch: assemble the span tree, make the
// tail-sampling keep/drop decision, and for kept traces store the document,
// attach latency exemplars, and ship a sealed envelope to the fleet
// collector. Loop goroutine only.
func (t *Tenant) traceFinish(b *trace.Builder, res *DriveResult) {
	t.activeTrace = nil
	tr := t.trc.Load()
	if tr == nil || b == nil {
		return
	}
	sc := b.Context()
	res.TraceID = sc.TraceID.String()
	res.Traceparent = sc.Traceparent()
	keep, reason := tr.sampler.Keep(b.HasViolations(), b.SLOBad(), b.MaxPauseNs())
	if !keep {
		return
	}
	doc := b.Finish(time.Now().UnixNano())
	doc.SampledReason = reason
	tr.store.Put(doc)
	res.TraceSampled = reason

	// Exemplars: every scrape-visible latency bucket this batch touched now
	// points at a trace that is actually stored, so following an exemplar
	// from /metrics always resolves on /tenants/{id}/traces/{traceID}.
	for i := range doc.Spans {
		sp := &doc.Spans[i]
		if sp.Name != "request" {
			continue
		}
		t.metrics.latency.SetExemplar(float64(sp.DurNs())/1e9, res.TraceID, sp.EndUnixNs)
	}

	if t.srv.sloShip != nil {
		if payload, err := json.Marshal(doc); err == nil {
			t.srv.sloShip.shipEnvelope(fleet.KindTrace, fleet.TraceRegistryRef, t.id, payload)
		}
	}
}

// Traces returns summaries of the tenant's stored traces, newest first.
// Safe from any goroutine (the store is internally locked).
func (t *Tenant) Traces() ([]trace.Summary, error) {
	tr := t.trc.Load()
	if tr == nil {
		return nil, fmt.Errorf("%w (tenant %s)", ErrNoTracing, t.id)
	}
	return tr.store.Summaries(), nil
}

// TraceByID returns one stored trace document. Safe from any goroutine.
func (t *Tenant) TraceByID(id string) (*trace.Document, error) {
	tr := t.trc.Load()
	if tr == nil {
		return nil, fmt.Errorf("%w (tenant %s)", ErrNoTracing, t.id)
	}
	doc, ok := tr.store.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s (dropped by the tail sampler, or evicted)", ErrNoTrace, id)
	}
	return doc, nil
}
