package assertd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"gcassert/internal/slo"
	"gcassert/internal/trace"
)

// maxProgramBytes bounds a submitted MJ source body.
const maxProgramBytes = 1 << 20

// maxDriveBatch bounds one drive batch: the service loop runs the batch to
// completion, so an unbounded batch would let one client monopolize its
// tenant far past any request timeout.
const maxDriveBatch = 100_000

// Handler returns the service's HTTP surface:
//
//	GET    /healthz                  liveness
//	GET    /metrics                  Prometheus text (tenant label on every per-tenant series)
//	POST   /tenants                  create  {"id": ..., "options": {...}}
//	GET    /tenants                  list    [TenantStats]
//	GET    /tenants/{id}             stats   TenantStats
//	DELETE /tenants/{id}             delete
//	POST   /tenants/{id}/program     submit MJ source (raw body) -> ProgramInfo
//	POST   /tenants/{id}/drive       {"requests": N, "collect": bool} -> DriveResult
//	POST   /tenants/{id}/collect     force one collection
//	GET    /tenants/{id}/violations  SSE stream of ViolationFrame JSON
//	GET    /tenants/{id}/events      SSE stream of GC events (?replay=N)
//	PUT    /tenants/{id}/slo         set/replace the tenant's SLO spec (JSON)
//	GET    /tenants/{id}/slo         fresh SLO status + remaining error budget
//	DELETE /tenants/{id}/slo         clear the tenant's SLO
//	GET    /tenants/{id}/traces      stored trace summaries, newest first
//	GET    /tenants/{id}/traces/{traceID}  one stored trace document
//	GET    /alerts                   SSE stream of SLO alert transitions, all tenants
//
// Every handler runs behind the traceparent middleware: an incoming W3C
// traceparent header is parsed and echoed back; a traced drive overrides
// the echo with the trace context it created, so the caller learns the
// trace ID that will resolve against /tenants/{id}/traces.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("POST /tenants", s.handleCreate)
	mux.HandleFunc("GET /tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /tenants/{id}", s.withTenant(func(t *Tenant, w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, t.Stats())
	}))
	mux.HandleFunc("DELETE /tenants/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.DeleteTenant(r.PathValue("id")); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("id")})
	})
	mux.HandleFunc("POST /tenants/{id}/program", s.withTenant(s.handleProgram))
	mux.HandleFunc("POST /tenants/{id}/drive", s.withTenant(s.handleDrive))
	mux.HandleFunc("POST /tenants/{id}/collect", s.withTenant(func(t *Tenant, w http.ResponseWriter, r *http.Request) {
		if err := t.Collect(); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, t.Stats())
	}))
	mux.HandleFunc("GET /tenants/{id}/violations", s.withTenant(s.handleViolations))
	mux.HandleFunc("GET /tenants/{id}/events", s.withTenant(s.handleEvents))
	mux.HandleFunc("PUT /tenants/{id}/slo", s.withTenant(s.handleSetSLO))
	mux.HandleFunc("GET /tenants/{id}/slo", s.withTenant(func(t *Tenant, w http.ResponseWriter, r *http.Request) {
		st, err := t.SLOStatus()
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	}))
	mux.HandleFunc("DELETE /tenants/{id}/slo", s.withTenant(func(t *Tenant, w http.ResponseWriter, r *http.Request) {
		if _, err := t.SetSLO(nil); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"cleared": t.ID()})
	}))
	mux.HandleFunc("GET /tenants/{id}/traces", s.withTenant(func(t *Tenant, w http.ResponseWriter, r *http.Request) {
		sums, err := t.Traces()
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, sums)
	}))
	mux.HandleFunc("GET /tenants/{id}/traces/{traceID}", s.withTenant(func(t *Tenant, w http.ResponseWriter, r *http.Request) {
		doc, err := t.TraceByID(r.PathValue("traceID"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, doc)
	}))
	mux.HandleFunc("GET /alerts", s.handleAlerts)
	return withTraceparent(mux)
}

// traceCtxKey carries the extracted inbound trace context through the
// request context.
type traceCtxKey struct{}

// withTraceparent is the distributed-tracing middleware: it extracts the
// W3C traceparent header on every request (stashing the span context for
// handlers that continue the trace) and injects one into every response —
// callers that sent a context get it echoed even on untraced endpoints, so
// log correlation works uniformly across the whole surface.
func withTraceparent(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sc, ok := trace.ParseTraceparent(r.Header.Get(trace.Header)); ok {
			r = r.WithContext(context.WithValue(r.Context(), traceCtxKey{}, sc))
			w.Header().Set(trace.Header, sc.Traceparent())
		}
		next.ServeHTTP(w, r)
	})
}

// spanContext returns the request's extracted inbound trace context (the
// zero SpanContext when the caller sent none).
func spanContext(r *http.Request) trace.SpanContext {
	sc, _ := r.Context().Value(traceCtxKey{}).(trace.SpanContext)
	return sc
}

// handleSetSLO installs or replaces a tenant's SLO spec. The window
// accounting restarts from now — changing objectives mid-window re-judges
// under the new contract, it does not re-interpret old history.
func (s *Server) handleSetSLO(t *Tenant, w http.ResponseWriter, r *http.Request) {
	var spec slo.Spec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&spec); err != nil {
		http.Error(w, "bad slo body: "+err.Error(), http.StatusBadRequest)
		return
	}
	st, err := t.SetSLO(&spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleAlerts streams SLO alert transitions for every tenant as SSE,
// replaying recent transitions first so a subscriber attaching after a
// burst still sees it (delivery is at-least-once around attach time). Slow
// clients lose frames rather than stall tenants.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported (response writer is not an http.Flusher)",
			http.StatusInternalServerError)
		return
	}
	ch, replay, cancel, ok := s.SubscribeAlerts(256)
	if !ok {
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}
	defer cancel()
	sseHeaders(w)
	for _, frame := range replay {
		if _, err := fmt.Fprintf(w, "data: %s\n\n", frame); err != nil {
			return
		}
	}
	flusher.Flush()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case frame, open := <-ch:
			if !open {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", frame); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// withTenant resolves {id} and 404s unknown tenants.
func (s *Server) withTenant(h func(*Tenant, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, ok := s.Tenant(r.PathValue("id"))
		if !ok {
			writeError(w, fmt.Errorf("%w: %s", ErrTenantNotFound, r.PathValue("id")))
			return
		}
		h(t, w, r)
	}
}

// CreateRequest is the POST /tenants body.
type CreateRequest struct {
	ID      string        `json:"id"`
	Options TenantOptions `json:"options"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		http.Error(w, "bad create body: "+err.Error(), http.StatusBadRequest)
		return
	}
	t, err := s.CreateTenant(req.ID, req.Options)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, t.Stats())
}

func (s *Server) handleProgram(t *Tenant, w http.ResponseWriter, r *http.Request) {
	src, err := io.ReadAll(io.LimitReader(r.Body, maxProgramBytes+1))
	if err != nil {
		http.Error(w, "reading program: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(src) > maxProgramBytes {
		http.Error(w, "program too large", http.StatusRequestEntityTooLarge)
		return
	}
	info, err := t.Submit(string(src))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// DriveRequest is the POST /tenants/{id}/drive body. It matches the
// loadlab.HTTPDrive wire contract on the request side; DriveResult matches
// it on the response side.
type DriveRequest struct {
	Requests int  `json:"requests"`
	Collect  bool `json:"collect,omitempty"`
}

func (s *Server) handleDrive(t *Tenant, w http.ResponseWriter, r *http.Request) {
	var req DriveRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		http.Error(w, "bad drive body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Requests <= 0 {
		req.Requests = 1
	}
	if req.Requests > maxDriveBatch {
		http.Error(w, fmt.Sprintf("drive batch too large (max %d)", maxDriveBatch), http.StatusBadRequest)
		return
	}
	res, err := t.DriveTraced(req.Requests, req.Collect, spanContext(r))
	if err != nil {
		writeError(w, err)
		return
	}
	if res.Traceparent != "" {
		// Override the middleware's echo with the trace this drive created.
		w.Header().Set(trace.Header, res.Traceparent)
	}
	writeJSON(w, http.StatusOK, res)
}

// handleViolations streams the tenant's violation frames as SSE. The
// stream ends when the client disconnects or the tenant is deleted (the
// hub closes every subscriber channel). Slow clients lose frames rather
// than stall the tenant; losses count on the tenant's dropped-frames
// metric and in TenantStats.StreamDropped.
func (s *Server) handleViolations(t *Tenant, w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported (response writer is not an http.Flusher)",
			http.StatusInternalServerError)
		return
	}
	ch, cancel, ok := t.SubscribeViolations(256)
	if !ok {
		writeError(w, fmt.Errorf("%w: %s", ErrTenantNotFound, t.ID()))
		return
	}
	defer cancel()
	sseHeaders(w)
	flusher.Flush()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case frame, open := <-ch:
			if !open {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", frame); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// handleEvents streams the tenant's GC events as SSE. ?replay=N resends the
// last N retained events first. The tracer's live hub has no close signal,
// so the loop also watches tenant deletion to end the stream.
func (s *Server) handleEvents(t *Tenant, w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported (response writer is not an http.Flusher)",
			http.StatusInternalServerError)
		return
	}
	replay := 0
	if v := r.URL.Query().Get("replay"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &replay); err != nil || replay < 0 {
			http.Error(w, "bad replay parameter", http.StatusBadRequest)
			return
		}
	}
	ch, cancel := t.SubscribeEvents(64)
	defer cancel()
	sseHeaders(w)
	if replay > 0 {
		evs := t.Events()
		if len(evs) > replay {
			evs = evs[len(evs)-replay:]
		}
		for i := range evs {
			frame, err := json.Marshal(&evs[i])
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", frame); err != nil {
				return
			}
		}
	}
	flusher.Flush()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.done:
			return
		case frame, open := <-ch:
			if !open {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", frame); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

func sseHeaders(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer SSE
	w.WriteHeader(http.StatusOK)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps service errors onto HTTP status codes.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrTenantNotFound), errors.Is(err, errTenantGone),
		errors.Is(err, ErrNoSLO), errors.Is(err, ErrNoTracing), errors.Is(err, ErrNoTrace):
		code = http.StatusNotFound
	case errors.Is(err, ErrTenantExists), errors.Is(err, ErrNoProgram):
		code = http.StatusConflict
	case errors.Is(err, ErrBadProgram), errors.Is(err, ErrBadTenantID),
		errors.Is(err, ErrBadSLO):
		code = http.StatusBadRequest
	case errors.Is(err, ErrServerFull):
		code = http.StatusServiceUnavailable
	default:
		// Guest faults (OOM, halt, VM error) are the guest's problem, not
		// the server's: report them as a client-visible 422 with the fault.
		code = http.StatusUnprocessableEntity
	}
	http.Error(w, err.Error(), code)
}
