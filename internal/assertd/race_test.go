package assertd_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gcassert/internal/assertd"
)

// TestConcurrentTenantsIsolation drives ≥8 tenants through their whole
// lifecycle — create, submit, drive, stream violations, delete —
// concurrently, and asserts the isolation properties the service exists
// for: no tenant ever observes another tenant's violations, per-tenant
// counts are exact, and tenant deletion releases every goroutine (service
// loops, SSE handlers, fleet exporters). Run it under -race: the tenants
// share a server, a registry, and nothing else.
func TestConcurrentTenantsIsolation(t *testing.T) {
	const tenants = 10 // half leakers, half steady
	const runs = 4

	before := runtime.NumGoroutine()
	s, ts := testServer(t, assertd.Config{InstanceID: "race-host"})

	var wg sync.WaitGroup
	violFrames := make([][]assertd.ViolationFrame, tenants)
	results := make([]assertd.DriveResult, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("t%02d", i)
			leaker := i%2 == 0
			createTenant(t, ts, id, assertd.TenantOptions{HeapMiB: 2})
			src := steadySrc
			if leaker {
				src = leakerSrc
			}
			submit(t, ts, id, src)

			// Attach this tenant's violation stream before driving.
			resp, err := http.Get(ts.URL + "/tenants/" + id + "/violations")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			streamed := make(chan []assertd.ViolationFrame, 1)
			go func() {
				var frames []assertd.ViolationFrame
				sc := bufio.NewScanner(resp.Body)
				for sc.Scan() {
					line := sc.Text()
					if !strings.HasPrefix(line, "data: ") {
						continue
					}
					var f assertd.ViolationFrame
					if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f); err == nil {
						frames = append(frames, f)
					}
				}
				streamed <- frames // stream ends when the tenant is deleted
			}()

			results[i] = drive(t, ts, id, runs, false)
			doJSON(t, "DELETE", ts.URL+"/tenants/"+id, nil, http.StatusOK, nil)
			violFrames[i] = <-streamed
		}(i)
	}
	wg.Wait()

	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("t%02d", i)
		leaker := i%2 == 0
		want := uint64(0)
		if leaker {
			want = runs
		}
		if results[i].Violations != want {
			t.Errorf("%s: drive violations = %d, want %d", id, results[i].Violations, want)
		}
		if got := uint64(len(violFrames[i])); got != want {
			t.Errorf("%s: streamed %d violation frames, want %d", id, got, want)
		}
		// The bleed check: every frame on this tenant's stream names this
		// tenant and this tenant only.
		for _, f := range violFrames[i] {
			if f.Tenant != id {
				t.Errorf("%s: stream carried a frame for tenant %q — cross-tenant bleed", id, f.Tenant)
			}
		}
	}
	if got := len(s.List()); got != 0 {
		t.Errorf("%d tenants survive their deletion", got)
	}

	// Goroutine bracketing: once every tenant is deleted and every stream
	// closed, the goroutine count must come back to the starting
	// neighborhood (httptest keep-alive workers unwind asynchronously, so
	// poll with a deadline and a small slack).
	deadline := time.Now().Add(5 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections() // keep-alive conns hold server goroutines
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after tenant teardown\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDeleteDuringDrive races deletion against in-flight drives: the drive
// either completes or reports the tenant gone, and nothing deadlocks.
func TestDeleteDuringDrive(t *testing.T) {
	_, ts := testServer(t, assertd.Config{})
	createTenant(t, ts, "victim", assertd.TenantOptions{HeapMiB: 2})
	submit(t, ts, "victim", steadySrc)

	// The DELETE waits for the first completed drive (not a sleep), so the
	// race is guaranteed live: drives are in flight when deletion lands.
	var wg sync.WaitGroup
	var once sync.Once
	driving := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				resp, err := http.Post(ts.URL+"/tenants/victim/drive", "application/json",
					strings.NewReader(`{"requests":1}`))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusNotFound:
				default:
					t.Errorf("drive during delete = %d", resp.StatusCode)
				}
				once.Do(func() { close(driving) })
			}
		}()
	}
	<-driving
	doJSON(t, "DELETE", ts.URL+"/tenants/victim", nil, http.StatusOK, nil)
	wg.Wait()
}
