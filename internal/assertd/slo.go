package assertd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"gcassert/internal/fleet"
	"gcassert/internal/slo"
	"gcassert/internal/telemetry"
	"gcassert/internal/version"
)

// ErrNoSLO reports an SLO query against a tenant with none configured
// (HTTP 404: the resource /tenants/{id}/slo does not exist yet).
var ErrNoSLO = errors.New("no slo configured")

// ErrBadSLO wraps SLO spec validation failures (HTTP 400).
var ErrBadSLO = errors.New("bad slo spec")

// alertReplay is how many recent alert transitions the server retains for
// replay to newly attached /alerts subscribers. Alerts are rare and bursty;
// a subscriber that attaches between bursts must still see what fired.
const alertReplay = 64

// SetSLO validates spec, swaps in a fresh tracker (windows restart from
// now), and returns the tenant's initial status. A nil spec clears the SLO.
func (t *Tenant) SetSLO(spec *slo.Spec) (*slo.Status, error) {
	if spec == nil {
		t.sloT.Store(nil)
		t.pokeSnapshot()
		return nil, nil
	}
	tr, err := slo.New(*spec, t.clock)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSLO, err)
	}
	t.sloT.Store(tr)
	t.pokeSnapshot()
	st, _ := tr.Status()
	return &st, nil
}

// SLOStatus re-evaluates the tenant's SLO at the current clock (so a firing
// alert on a quiet tenant can clear on a read) and returns the judgment
// document. Safe from any goroutine: the tracker is internally locked and
// any transitions the evaluation causes publish through the same
// thread-safe sinks the record path uses.
func (t *Tenant) SLOStatus() (*slo.Status, error) {
	tr := t.sloT.Load()
	if tr == nil {
		return nil, fmt.Errorf("%w (tenant %s)", ErrNoSLO, t.id)
	}
	st, evs := tr.Status()
	t.publishAlerts(evs)
	return &st, nil
}

// pokeSnapshot runs a no-op command through the service loop so the cached
// stats snapshot (and the SLO metric gauges) reflect an out-of-band SLO
// change. Best-effort: a deleted tenant just skips it.
func (t *Tenant) pokeSnapshot() {
	_, _ = t.do(func(*guest) (any, error) { return nil, nil })
}

// sloRecordRequests is the request-path seam: one atomic load and a nil
// check when no SLO is configured (BenchmarkSLOOff pins this at zero
// allocations). It returns the SLO engine's at-record-time judgment —
// whether this batch was SLO-bad — which the trace tail sampler consumes;
// with no SLO configured nothing is ever SLO-bad.
func (t *Tenant) sloRecordRequests(requests, failures, violations uint64) bool {
	tr := t.sloT.Load()
	if tr == nil {
		return false
	}
	bad, evs := tr.RecordRequestsMarked(requests, failures, violations)
	if len(evs) > 0 {
		t.publishAlerts(evs)
	}
	return bad
}

// sloRecordPause is the GC-path seam, fed from the telemetry OnRecord tap
// with the collection's total pause and its assertion-attributed share.
func (t *Tenant) sloRecordPause(pauseNs, assertNs int64) {
	tr := t.sloT.Load()
	if tr == nil {
		return
	}
	if evs := tr.RecordPause(pauseNs, assertNs); len(evs) > 0 {
		t.publishAlerts(evs)
	}
}

// publishAlerts stamps, marshals and fans out alert transitions: the
// server-wide /alerts SSE hub (with replay), the per-tenant transition
// counter, and — when a fleet collector is configured — a sealed SLO report
// envelope per transition. Safe from any goroutine.
func (t *Tenant) publishAlerts(evs []slo.AlertEvent) {
	for i := range evs {
		evs[i].Tenant = t.id
		t.metrics.alertTransitions.Inc()
		frame, err := json.Marshal(&evs[i])
		if err != nil {
			continue
		}
		t.srv.publishAlert(frame)
		if t.srv.sloShip != nil {
			if st, err := t.SLOStatusQuiet(); err == nil {
				t.srv.sloShip.ship(t.id, evs[i], *st)
			}
		}
	}
}

// SLOStatusQuiet returns the status document without re-publishing the
// transitions a re-evaluation might cause (used while already publishing).
func (t *Tenant) SLOStatusQuiet() (*slo.Status, error) {
	tr := t.sloT.Load()
	if tr == nil {
		return nil, ErrNoSLO
	}
	st, _ := tr.Status()
	return &st, nil
}

// publishAlert records one marshaled transition in the hub's replay ring
// and fans it out to /alerts subscribers.
func (s *Server) publishAlert(frame []byte) {
	s.alerts.Publish(frame)
}

// SubscribeAlerts subscribes to the server-wide alert stream. replay
// returns up to alertReplay recent transitions; subscribers see
// at-least-once delivery around attach time (a transition racing the
// subscription may appear in both the replay and the live stream).
func (s *Server) SubscribeAlerts(buf int) (frames <-chan []byte, replay [][]byte, cancel func(), ok bool) {
	return s.alerts.SubscribeReplay(buf)
}

// sloStateNum encodes an alert state for the gcassertd_slo_alert_state
// gauge: 0 ok, 1 pending, 2 firing.
func sloStateNum(state string) int64 {
	switch state {
	case "pending":
		return 1
	case "firing":
		return 2
	}
	return 0
}

// updateSLOMetrics refreshes the tenant's gcassertd_slo_* series from a
// status document. Registration is idempotent, so lazily looking series up
// per refresh is cheap and new objectives (after a PUT) appear on the next
// refresh.
func (t *Tenant) updateSLOMetrics(st *slo.Status) {
	reg := t.srv.reg
	for _, o := range st.Objectives {
		tl := telemetry.Label{Name: "tenant", Value: t.id}
		ol := telemetry.Label{Name: "objective", Value: o.Name}
		reg.FloatGauge("gcassertd_slo_budget_remaining_ratio",
			"Error budget remaining over the compliance window (1 = untouched), by tenant and objective.",
			tl, ol).Set(o.BudgetRemainingRatio)
		for _, a := range o.Alerts {
			sl := telemetry.Label{Name: "severity", Value: a.Severity}
			reg.FloatGauge("gcassertd_slo_burn_rate",
				"Short-window error-budget burn rate (1 = spending at the sustainable rate), by tenant, objective and severity.",
				tl, ol, sl).Set(a.BurnShort)
			reg.Gauge("gcassertd_slo_alert_state",
				"Burn-rate alert state (0 ok, 1 pending, 2 firing), by tenant, objective and severity.",
				tl, ol, sl).Set(sloStateNum(a.State))
		}
	}
}

// sloShipper ships sealed envelopes (SLO reports, kept traces) to a gcfleet
// collector. Same discipline as the fleet census exporter: enqueue never
// blocks (alert transitions happen on tenant service loops, sometimes
// inside stop-the-world pauses), a dedicated sender goroutine owns all
// network I/O, and the bounded queue drops the oldest envelope on overflow.
type sloShipper struct {
	url    string
	ident  version.Identity
	client *http.Client

	mu    sync.Mutex
	queue [][]byte

	wake    chan struct{}
	stop    chan struct{}
	wg      sync.WaitGroup
	dropped atomic.Uint64
	sent    atomic.Uint64
	errs    atomic.Uint64
}

// sloShipQueueLimit bounds unsent SLO report envelopes.
const sloShipQueueLimit = 64

func newSLOShipper(url string, ident version.Identity) *sloShipper {
	sh := &sloShipper{
		url:    url,
		ident:  ident,
		client: &http.Client{Timeout: 5 * time.Second},
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}
	sh.wg.Add(1)
	go sh.sender()
	return sh
}

// ship seals one report under the composed host/tenant identity and queues
// it. Never blocks.
func (sh *sloShipper) ship(tenant string, ev slo.AlertEvent, st slo.Status) {
	payload, err := json.Marshal(&fleet.SLOReport{Tenant: tenant, Event: ev, Status: st})
	if err != nil {
		return
	}
	sh.shipEnvelope(fleet.KindSLO, fleet.SLORegistryRef, tenant, payload)
}

// shipEnvelope seals an arbitrary payload under the composed host/tenant
// identity and queues it. Never blocks.
func (sh *sloShipper) shipEnvelope(kind, registryRef, tenant string, payload []byte) {
	env, err := fleet.Seal(kind, registryRef, sh.ident.Sub(tenant),
		time.Now().UnixNano(), payload)
	if err != nil {
		return
	}
	wire, err := json.Marshal(&env)
	if err != nil {
		return
	}
	sh.mu.Lock()
	if len(sh.queue) >= sloShipQueueLimit {
		sh.queue = sh.queue[1:]
		sh.dropped.Add(1)
	}
	sh.queue = append(sh.queue, wire)
	sh.mu.Unlock()
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

func (sh *sloShipper) sender() {
	defer sh.wg.Done()
	for {
		select {
		case <-sh.wake:
			sh.drain()
		case <-sh.stop:
			sh.drain()
			return
		}
	}
}

func (sh *sloShipper) drain() {
	for {
		sh.mu.Lock()
		if len(sh.queue) == 0 {
			sh.mu.Unlock()
			return
		}
		wire := sh.queue[0]
		sh.queue = sh.queue[1:]
		sh.mu.Unlock()
		if err := sh.post(wire); err != nil {
			sh.errs.Add(1)
		} else {
			sh.sent.Add(1)
		}
	}
}

func (sh *sloShipper) post(wire []byte) error {
	resp, err := sh.client.Post(sh.url+"/fleet/ingest", "application/json",
		bytes.NewReader(wire))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("collector returned %s", resp.Status)
	}
	return nil
}

// close flushes the queue and stops the sender.
func (sh *sloShipper) close() {
	close(sh.stop)
	sh.wg.Wait()
}
