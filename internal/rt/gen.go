package rt

import (
	"gcassert/internal/collector"
	"gcassert/internal/heap"
)

// generational implements the sticky-mark-bit generational mode. It exists
// to reproduce the paper's §2.2 observation: with a generational collector,
// full-heap collections are infrequent, so GC assertions can go unchecked
// for long periods (measured by the AblationGenerational benchmark).
//
// Scheme: mark bits are sticky — objects that survive a collection keep
// their mark, making "marked" mean "old". A minor collection traces from
// roots plus the remembered set, does not traverse into old objects, and
// sweeps with KeepMarks so old objects are retained wholesale. A write
// barrier records old objects that are stored a reference (their fields act
// as extra minor-GC roots). Full collections clear every mark, run the
// normal assertion-checking cycle, then re-mark all survivors as old.
type generational struct {
	r     *Runtime
	minor *collector.Collector

	// remset holds old (marked) objects whose fields were mutated; their
	// outgoing references are minor-GC roots. scratch holds the flattened
	// targets during a minor collection so the collector can take slot
	// addresses.
	remset  []heap.Addr
	scratch []heap.Addr

	inMinor   bool
	sinceFull int
	ratio     int

	// Minors and Fulls count collections by kind.
	Minors uint64
	Fulls  uint64
}

func (r *Runtime) initGenerational(cfg Config) {
	g := &generational{r: r, ratio: cfg.MinorRatio}
	if g.ratio <= 0 {
		g.ratio = 4
	}
	g.minor = collector.New(r.space, (*rootScanner)(r), nil, false)
	g.minor.KeepMarks = true
	// Minor collections show up in the telemetry trace too (distinguished
	// by their reason label, which lacks the "-full" suffix), and get their
	// triggers explained by the same pressure tracker.
	g.minor.Observer = r.gc.Observer
	g.minor.ExplainTrigger = r.gc.ExplainTrigger
	g.minor.PreSweep = func() {
		if r.engine != nil {
			r.engine.PruneWeak()
		}
	}
	r.space.WriteBarrier = g.barrier
	r.gen = g
}

// barrier records old→anything stores; unmarked (new) sources need no entry
// because they are traced directly if reachable.
func (g *generational) barrier(src, val heap.Addr) {
	s := g.r.space
	if s.Marked(src) && !s.HasFlag(src, heap.FlagRemembered) {
		s.SetFlag(src, heap.FlagRemembered)
		g.remset = append(g.remset, src)
	}
}

// collect runs the policy for an allocation failure: minor collections until
// the ratio forces a full one.
func (g *generational) collect(reason collector.Reason) {
	if g.sinceFull >= g.ratio {
		g.fullCollect(reason.Full())
		return
	}
	g.minorCollect(reason)
}

func (g *generational) minorCollect(reason collector.Reason) {
	// Flatten the remembered set's outgoing references into scratch so the
	// root scanner can hand out stable slot addresses.
	g.scratch = g.scratch[:0]
	for _, src := range g.remset {
		g.r.space.ForEachRef(src, func(_ int, t heap.Addr) {
			g.scratch = append(g.scratch, t)
		})
	}
	g.inMinor = true
	g.minor.Collect(reason)
	g.inMinor = false
	g.Minors++
	g.sinceFull++
}

func (g *generational) fullCollect(reason collector.Reason) collector.Collection {
	s := g.r.space
	// Un-stick all marks and clear remembered flags so the full trace is a
	// clean slate.
	s.ForEachObject(func(a heap.Addr) bool {
		s.ClearFlag(a, heap.FlagMark|heap.FlagRemembered)
		return true
	})
	g.remset = g.remset[:0]
	col := g.r.gc.Collect(reason)
	// Survivors become the old generation.
	s.ForEachObject(func(a heap.Addr) bool {
		s.SetMark(a)
		return true
	})
	g.Fulls++
	g.sinceFull = 0
	return col
}

// extraRoots contributes the remembered set's targets during minor
// collections only.
func (g *generational) extraRoots(yield func(collector.Root)) {
	if !g.inMinor {
		return
	}
	for i := range g.scratch {
		yield(collector.Root{Slot: &g.scratch[i], Desc: "remset"})
	}
}

// MinorStats exposes the minor collector's cumulative statistics.
func (g *generational) MinorStats() collector.Stats { return g.minor.Stats() }

// GenStats reports minor/full collection counts in generational mode; ok is
// false when the runtime is not generational.
func (r *Runtime) GenStats() (minors, fulls uint64, ok bool) {
	if r.gen == nil {
		return 0, 0, false
	}
	return r.gen.Minors, r.gen.Fulls, true
}

// MinorGCStats returns the cumulative stats of the minor collector (zero
// when not generational).
func (r *Runtime) MinorGCStats() collector.Stats {
	if r.gen == nil {
		return collector.Stats{}
	}
	return r.gen.MinorStats()
}
