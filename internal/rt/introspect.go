package rt

import (
	"gcassert/internal/collector"
	"gcassert/internal/heapdump"
	"gcassert/internal/telemetry"
)

// initIntrospection wires the heap census into the full collector: the
// Observe callback on the mark hot path, the Observer lifecycle for snapshot
// capture, and — when telemetry is also enabled — per-type census gauges in
// the metrics registry.
//
// Only r.gc (the full collector) is instrumented. In generational mode the
// minor collector keeps whatever Observer it copied at init; its traces
// visit only the nursery plus remembered set, so feeding them to the census
// would record partial heaps as if they were full snapshots.
func (r *Runtime) initIntrospection(cfg Config) {
	census := heapdump.NewCensus(r.space, heapdump.Config{Ring: cfg.CensusRingSize})
	r.census = census
	r.gc.OnMark = census.Observe
	if prev := r.gc.Observer; prev != nil {
		r.gc.Observer = collector.TeeObserver{prev, census}
	} else {
		r.gc.Observer = census
	}
	if r.tel != nil {
		pub := &censusPublisher{reg: r.tel.Registry()}
		census.SetOnSnapshot(pub.publish)
	}
}

// censusPublisher mirrors each census snapshot into the metrics registry as
// per-type gauges, so a Prometheus scrape sees the live-heap composition
// without hitting the census endpoint. It runs inside the stop-the-world
// collection (census OnSnapshot contract) and touches only Go-heap state.
type censusPublisher struct {
	reg *telemetry.Registry
	// objects/bytes cache the gauge handles per type name; live tracks which
	// types were nonzero in the previous snapshot so types that die out are
	// zeroed rather than left frozen at their last value.
	objects map[string]*telemetry.Gauge
	bytes   map[string]*telemetry.Gauge
	live    map[string]bool
}

func (p *censusPublisher) publish(s *heapdump.Snapshot) {
	if p.objects == nil {
		p.objects = map[string]*telemetry.Gauge{}
		p.bytes = map[string]*telemetry.Gauge{}
		p.live = map[string]bool{}
	}
	p.reg.Counter("gcassert_census_snapshots_total",
		"Census snapshots recorded.").Inc()
	seen := map[string]bool{}
	for i := range s.Types {
		row := &s.Types[i]
		seen[row.TypeName] = true
		p.gaugesFor(row.TypeName)
		p.objects[row.TypeName].Set(int64(row.Objects))
		p.bytes[row.TypeName].Set(int64(row.Bytes()))
	}
	for name := range p.live {
		if !seen[name] {
			p.objects[name].Set(0)
			p.bytes[name].Set(0)
		}
	}
	p.live = seen
}

func (p *censusPublisher) gaugesFor(name string) {
	if _, ok := p.objects[name]; ok {
		return
	}
	p.objects[name] = p.reg.Gauge("gcassert_census_live_objects",
		"Live objects by type, from the most recent census.", telemetry.Label{Name: "type", Value: name})
	p.bytes[name] = p.reg.Gauge("gcassert_census_live_bytes",
		"Live payload bytes by type, from the most recent census.", telemetry.Label{Name: "type", Value: name})
}
