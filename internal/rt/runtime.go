// Package rt is the managed runtime tying the heap, the collector and the
// assertion engine together: it owns the root set (thread frames and
// globals), the allocation path (with collect-on-exhaustion), and the
// programmer-facing assertion entry points.
//
// The runtime models the paper's host VM at the level the assertions need:
// mutator "threads" are cooperative contexts whose frames are scanned as
// roots during stop-the-world collections. A Runtime and all of its threads
// must be used from a single goroutine; collections happen synchronously
// inside allocation or Collect calls, which is the stop-the-world discipline
// the paper's collector relies on.
package rt

import (
	"fmt"
	"io"

	"gcassert/internal/collector"
	"gcassert/internal/core"
	"gcassert/internal/fleet"
	"gcassert/internal/flight"
	"gcassert/internal/heap"
	"gcassert/internal/heapdump"
	"gcassert/internal/telemetry"
	"gcassert/internal/version"
)

// Config configures a Runtime.
type Config struct {
	// HeapBytes is the managed heap size. The collector runs when allocation
	// fails; like the paper's methodology, benchmarks size this at a small
	// multiple of the live set. Default 64 MiB.
	HeapBytes int
	// Infrastructure enables the GC-assertions infrastructure in the
	// collector (the paper's "Infrastructure" configuration). Without it the
	// collector runs the unmodified Base trace and assertions are
	// unavailable.
	Infrastructure bool
	// Reporter receives violations (default: a writer to Stderr is NOT
	// installed; violations are recorded only if a reporter is given).
	Reporter core.Reporter
	// Policy selects per-kind reactions (default: log and continue).
	Policy core.Policy
	// Registry supplies a pre-built type registry; nil creates a fresh one.
	Registry *heap.Registry
	// Generational enables the sticky-mark-bit generational mode: minor
	// collections trace only newly allocated objects (plus remembered-set
	// entries) and assertions are checked only at full-heap collections, as
	// the paper discusses for generational collectors (§2.2).
	Generational bool
	// MinorRatio, in generational mode, triggers a full collection after
	// this many minor collections (default 4).
	MinorRatio int
	// LogWriter, if non-nil, receives a WriterReporter in addition to
	// Reporter.
	LogWriter io.Writer
	// Telemetry enables the observability layer: a structured GC event
	// trace, a metrics registry with a pause histogram, and (in
	// Infrastructure mode) a violation log, all reachable through
	// Runtime.Telemetry(). Disabled, the collector pays one nil-check per
	// phase and the mark hot path is untouched.
	Telemetry bool
	// TelemetryRingSize bounds the retained GC event trace (default 1024).
	TelemetryRingSize int
	// Workers selects the number of mark-phase workers for full collections.
	// 0 or 1 (the default) uses the sequential reference marker; n > 1 runs
	// the work-stealing parallel mark engine. Generational minor collections
	// always mark sequentially (they are sticky-mark partial traces).
	Workers int
	// ProvenanceSample enables allocation-site provenance: 0 (the default)
	// disables it, 1 records every sited allocation (exhaustive), N > 1
	// records every Nth (sampled). With provenance on, violations report the
	// offending object's allocation site, the census and leak ranking group
	// by (type, site), and the flight recorder's heap profile resolves to
	// sites. Disabled, the allocation path pays one nil-check on sited
	// allocations and nothing on plain ones.
	ProvenanceSample int
	// FlightRecorder enables the GC flight recorder: an always-on bounded
	// ring of recent collection cycles (phase timings, per-worker mark
	// stats, census deltas, assertion activity) plus recent violations,
	// dumpable on demand as a self-contained forensic bundle with a
	// pprof-format heap profile. See Runtime.Flight.
	FlightRecorder bool
	// FlightCycles bounds the flight recorder's cycle ring (default 64).
	FlightCycles int
	// CostAttribution enables the cost-attribution and heap-pressure layer:
	// per-assertion-kind time/work accounting on every collection
	// (Collection.AssertCost), mutator-side pressure stats (per-thread
	// allocation counters, allocation-rate EWMA, occupancy timeline,
	// Runtime.Pressure), and a trigger explainer stamping every collection
	// with why it ran (Collection.Trigger). Disabled, the mark hot path is
	// untouched, the allocation path pays one nil-check, and collections pay
	// one nil-check for the explainer hook.
	CostAttribution bool
	// InstanceID names this runtime instance in exported artifacts (flight
	// bundles, census documents, fleet envelopes). Empty generates a
	// host-pid-random ID, which is right for fleets of identical replicas.
	InstanceID string
	// Tenant, when non-empty, marks this runtime as one named tenant of a
	// multi-runtime host: the effective instance ID becomes
	// "InstanceID/Tenant" (composed via version.Identity.Sub), so many
	// tenants sharing one configured InstanceID export to the fleet
	// collector as distinct instances instead of colliding.
	Tenant string
	// FleetURL, when non-empty, enables the fleet exporter: census
	// envelopes (and, on violation, flight bundles) are content-addressed
	// and shipped to the gcfleet collector at this base URL from a
	// background goroutine. Works best with Introspection (census) and
	// FlightRecorder (violation forensics); without both there is nothing
	// to ship.
	FleetURL string
	// FleetEvery exports a census envelope every N full collections
	// (default 1 — the collector dedupes identical content, so steady-state
	// replicas are nearly free to report).
	FleetEvery int
	// Introspection enables the heap-introspection layer: a per-type census
	// taken during every full collection's mark phase (one callback per
	// marked object), snapshot diffing with leak-suspect ranking, and
	// on-demand dominator/retained-size analysis, reachable through
	// Runtime.Census(). Disabled, the mark hot path pays one nil-check per
	// marked object and nothing else.
	Introspection bool
	// CensusRingSize bounds the retained census snapshots (default 64).
	CensusRingSize int
}

// Runtime is a managed runtime instance.
type Runtime struct {
	reg    *heap.Registry
	space  *heap.Space
	engine *core.Engine
	gc     *collector.Collector

	threads  []*Thread
	nextTID  uint64
	globals  []heap.Addr
	globNams []string

	gen      *generational
	tel      *telemetry.Tracer
	census   *heapdump.Census
	flight   *flight.Recorder
	pressure *pressure

	identity version.Identity
	fleetx   *fleet.Exporter
}

// New creates a runtime per cfg.
func New(cfg Config) *Runtime {
	if cfg.HeapBytes <= 0 {
		cfg.HeapBytes = 64 << 20
	}
	reg := cfg.Registry
	if reg == nil {
		reg = heap.NewRegistry()
	}
	r := &Runtime{reg: reg, space: heap.NewSpace(reg, cfg.HeapBytes)}
	r.identity = version.NewIdentity(cfg.InstanceID)
	if cfg.Tenant != "" {
		r.identity = r.identity.Sub(cfg.Tenant)
	}
	if cfg.ProvenanceSample > 0 {
		r.space.EnableProvenance(cfg.ProvenanceSample)
	}
	if cfg.FlightRecorder {
		r.flight = flight.New(flight.Config{Cycles: cfg.FlightCycles})
	}
	if cfg.Telemetry {
		r.tel = telemetry.New(telemetry.Config{RingSize: cfg.TelemetryRingSize})
	}
	var hooks collector.Hooks
	if cfg.Infrastructure {
		rep := cfg.Reporter
		if cfg.LogWriter != nil {
			wr := core.NewWriterReporter(cfg.LogWriter)
			if rep != nil {
				rep = core.TeeReporter{rep, wr}
			} else {
				rep = wr
			}
		}
		if r.tel != nil {
			tl := core.FuncReporter(func(v *core.Violation) { r.tel.LogViolation(v.String()) })
			if rep != nil {
				rep = core.TeeReporter{rep, tl}
			} else {
				rep = tl
			}
		}
		if r.flight != nil {
			fl := core.FuncReporter(func(v *core.Violation) { r.flight.RecordViolation(flightViolation(v)) })
			if rep != nil {
				rep = core.TeeReporter{rep, fl}
			} else {
				rep = fl
			}
		}
		if cfg.FleetURL != "" {
			// Latch a violation-triggered export; the exporter (wired as an
			// observer at the end of New) ships census + flight bundle at
			// the end of this collection.
			fv := core.FuncReporter(func(v *core.Violation) {
				if r.fleetx != nil {
					r.fleetx.NoteViolation()
				}
			})
			if rep != nil {
				rep = core.TeeReporter{rep, fv}
			} else {
				rep = fv
			}
		}
		r.engine = core.NewEngine(r.space, rep, cfg.Policy)
		hooks = r.engine
	}
	r.gc = collector.New(r.space, (*rootScanner)(r), hooks, cfg.Infrastructure)
	if cfg.Workers > 1 {
		r.gc.SetWorkers(cfg.Workers)
	}
	if r.tel != nil {
		r.gc.Observer = newTelemetrySink(r, r.tel)
	}
	if cfg.CostAttribution {
		// Attribution before the generational split: initGenerational copies
		// the explainer (like the Observer) onto the minor collector, so
		// minor collections are explained too.
		if r.engine != nil {
			r.engine.EnableCostAttribution()
		}
		r.pressure = newPressure(r)
		r.gc.ExplainTrigger = r.pressure.explain
	}
	if cfg.Generational {
		r.initGenerational(cfg)
	}
	// Introspection is wired after the generational mode: initGenerational
	// copies r.gc.Observer into the minor collector, and the census must see
	// only full collections — a minor trace visits just the nursery, so a
	// census of it would be a partial (and misleading) snapshot.
	if cfg.Introspection {
		r.initIntrospection(cfg)
	}
	// The flight recorder observes after the generational split for the same
	// reason as the census: it records full collections, where assertions
	// are checked and the census is taken.
	if r.flight != nil {
		r.initFlight()
	}
	// Identity stamps for exported artifacts.
	if r.census != nil {
		r.census.SetIdentity(r.identity)
	}
	if r.flight != nil {
		r.flight.SetIdentity(r.identity)
	}
	if r.tel != nil {
		b := r.identity.Build
		r.tel.Registry().Gauge("gcassert_build_info",
			"Build and instance identity of this runtime (value is always 1; the information is in the labels).",
			telemetry.Label{Name: "version", Value: b.Version},
			telemetry.Label{Name: "go_version", Value: b.GoVersion},
			telemetry.Label{Name: "revision", Value: b.VCSRevision},
			telemetry.Label{Name: "instance", Value: r.identity.InstanceID},
		).Set(1)
	}
	// The fleet exporter observes last: census and flight state for the
	// cycle must exist before it seals envelopes.
	if cfg.FleetURL != "" {
		r.initFleet(cfg)
	}
	return r
}

// Space exposes the heap for field and array access.
func (r *Runtime) Space() *heap.Space { return r.space }

// Registry exposes the type registry.
func (r *Runtime) Registry() *heap.Registry { return r.reg }

// Collector exposes the collector (for stats).
func (r *Runtime) Collector() *collector.Collector { return r.gc }

// Engine exposes the assertion engine, or nil when infrastructure mode is
// off.
func (r *Runtime) Engine() *core.Engine { return r.engine }

// Telemetry exposes the observability layer, or nil when telemetry is off.
func (r *Runtime) Telemetry() *telemetry.Tracer { return r.tel }

// Census exposes the heap-introspection layer, or nil when introspection is
// off.
func (r *Runtime) Census() *heapdump.Census { return r.census }

// Flight exposes the GC flight recorder, or nil when it is off.
func (r *Runtime) Flight() *flight.Recorder { return r.flight }

// RegisterAllocSite registers an allocation-site description and returns
// its SiteID, for use with Thread.NewAt/NewArrayAt. Callers register once
// per callsite and cache the ID. When provenance is disabled it returns the
// unknown site, which sited allocation entry points treat as "record
// nothing" — callers need no mode check of their own.
func (r *Runtime) RegisterAllocSite(desc string) heap.SiteID {
	if p := r.space.Provenance(); p != nil {
		return p.Register(desc)
	}
	return 0
}

// AllocSite returns the recorded allocation site of the object at a: its ID
// and description. Both are zero when provenance is off or the allocation
// was not sampled.
func (r *Runtime) AllocSite(a heap.Addr) (heap.SiteID, string) {
	return r.space.SiteOf(a), r.space.SiteDesc(a)
}

// SetRequestTag names the request the mutator is currently serving; an
// empty tag clears it. Collections that begin while the tag is set carry
// it on their record and telemetry event (Collection.Request,
// Event.Request), which is how the gcassertd tracing layer parents a GC
// pause under the exact request span it interrupted. Single-goroutine like
// every other mutator-side call; with tracing off it is simply never
// called.
func (r *Runtime) SetRequestTag(tag string) { r.gc.SetRequestTag(tag) }

// SetMarkWorkers changes the mark-phase worker count for subsequent full
// collections (1 = the sequential reference marker). It may be called
// between collections — benchmarks use it to re-mark the same heap at
// several widths.
func (r *Runtime) SetMarkWorkers(n int) { r.gc.SetWorkers(n) }

// MarkWorkers returns the configured mark-phase worker count.
func (r *Runtime) MarkWorkers() int { return r.gc.Workers() }

// Collect forces a full collection.
func (r *Runtime) Collect() collector.Collection {
	if r.gen != nil {
		return r.gen.fullCollect(collector.ReasonForced)
	}
	return r.gc.Collect(collector.ReasonForced)
}

// Define registers a new object type.
func (r *Runtime) Define(name string, fields ...heap.Field) heap.TypeID {
	return r.reg.Define(name, fields...)
}

// NewGlobal allocates a named global root slot and returns its index.
func (r *Runtime) NewGlobal(name string) int {
	r.globals = append(r.globals, heap.Nil)
	r.globNams = append(r.globNams, "global:"+name)
	return len(r.globals) - 1
}

// SetGlobal stores a reference in a global slot. Globals are scanned as
// roots at every collection, so no write barrier is needed for them.
func (r *Runtime) SetGlobal(g int, v heap.Addr) { r.globals[g] = v }

// GetGlobal loads a global slot.
func (r *Runtime) GetGlobal(g int) heap.Addr { return r.globals[g] }

// NewThread creates a mutator context whose frames are scanned as roots.
func (r *Runtime) NewThread(name string) *Thread {
	t := &Thread{rt: r, id: r.nextTID, name: name}
	r.nextTID++
	r.threads = append(r.threads, t)
	return t
}

// rootScanner adapts the runtime's globals and thread frames to the
// collector's RootScanner interface.
type rootScanner Runtime

// Roots enumerates every global slot and every slot of every live frame.
func (rs *rootScanner) Roots(yield func(collector.Root)) {
	r := (*Runtime)(rs)
	for i := range r.globals {
		yield(collector.Root{Slot: &r.globals[i], Desc: r.globNams[i]})
	}
	for _, t := range r.threads {
		for _, f := range t.frames {
			for j := range f.slots {
				yield(collector.Root{Slot: &f.slots[j], Desc: f.desc})
			}
		}
	}
	if r.gen != nil {
		r.gen.extraRoots(yield)
	}
}

// RootScanner exposes the runtime's root set (globals plus every thread
// frame) for read-only heap walks such as heap probes.
func (r *Runtime) RootScanner() collector.RootScanner { return (*rootScanner)(r) }

// mustEngine returns the engine or panics with a helpful message.
func (r *Runtime) mustEngine(op string) *core.Engine {
	if r.engine == nil {
		panic(fmt.Sprintf("rt: %s requires Infrastructure mode", op))
	}
	return r.engine
}

// AssertDead asserts the object must be unreachable at the next collection.
func (r *Runtime) AssertDead(a heap.Addr) { r.mustEngine("AssertDead").AssertDead(a) }

// AssertUnshared asserts the object has at most one incoming pointer.
func (r *Runtime) AssertUnshared(a heap.Addr) { r.mustEngine("AssertUnshared").AssertUnshared(a) }

// AssertInstances asserts at most limit live instances of t at each GC.
func (r *Runtime) AssertInstances(t heap.TypeID, limit int64) {
	r.mustEngine("AssertInstances").AssertInstances(t, limit)
}

// AssertOwnedBy asserts ownee must not outlive reachability via owner.
func (r *Runtime) AssertOwnedBy(owner, ownee heap.Addr) {
	r.mustEngine("AssertOwnedBy").AssertOwnedBy(owner, ownee)
}

// OOMError is the panic payload raised when the heap cannot satisfy an
// allocation even after a full collection.
type OOMError struct {
	// Type is the type being allocated; Len the array length.
	Type heap.TypeID
	Len  int
	// Live summarizes the heap at failure.
	Live heap.Stats
}

// Error describes the exhaustion.
func (e *OOMError) Error() string {
	return fmt.Sprintf("rt: out of memory allocating type %d (len %d); live: %d objects / %d words",
		e.Type, e.Len, e.Live.LiveObjects, e.Live.LiveWords)
}
