package rt

import (
	"time"

	"gcassert/internal/collector"
	"gcassert/internal/core"
	"gcassert/internal/heap"
	"gcassert/internal/telemetry"
)

// telemetrySink adapts the collector's Observer callbacks into telemetry
// Events. It lives only on telemetry-enabled runtimes; a disabled runtime
// leaves the collector's Observer nil, so the Base trace is unperturbed.
//
// The sink runs inside stop-the-world collections on the runtime's
// goroutine, so plain fields need no synchronization; the tracer it feeds
// is the concurrency boundary.
type telemetrySink struct {
	r *Runtime
	t *telemetry.Tracer

	// engineBefore and heapLast are the stat snapshots used to compute
	// per-collection deltas: engine stats at GCBegin (per-kind checks and
	// violations of this cycle), heap stats carried across collections
	// (allocation counters cover the whole inter-GC window).
	engineBefore core.Stats
	heapLast     heap.Stats

	gcStart    time.Time
	phaseStart time.Time
	phases     []telemetry.PhaseSpan
}

var _ collector.Observer = (*telemetrySink)(nil)

func newTelemetrySink(r *Runtime, t *telemetry.Tracer) *telemetrySink {
	return &telemetrySink{r: r, t: t, heapLast: r.space.Stats()}
}

func (s *telemetrySink) GCBegin(seq uint64, reason collector.Reason) {
	s.gcStart = time.Now()
	s.phases = make([]telemetry.PhaseSpan, 0, 3)
	s.t.RecordTrigger(string(reason))
	if s.r.engine != nil {
		s.engineBefore = s.r.engine.Stats()
	}
}

func (s *telemetrySink) PhaseBegin(p collector.Phase) { s.phaseStart = time.Now() }

func (s *telemetrySink) PhaseEnd(p collector.Phase, d time.Duration) {
	s.phases = append(s.phases, telemetry.PhaseSpan{
		Phase:       p.String(),
		StartUnixNs: s.phaseStart.UnixNano(),
		DurNs:       int64(d),
	})
}

func (s *telemetrySink) GCEnd(col *collector.Collection) {
	ev := &telemetry.Event{
		Reason:        string(col.Reason),
		Request:       col.Request,
		StartUnixNs:   s.gcStart.UnixNano(),
		TotalNs:       int64(col.TotalTime),
		Phases:        s.phases,
		RootsScanned:  col.RootsScanned,
		ObjectsMarked: col.ObjectsMarked,
		ObjectsFreed:  col.ObjectsFreed,
		ObjectsLive:   col.ObjectsLive,
		WordsFreed:    col.WordsFreed,
		Workers:       col.Workers,
		Fallback:      col.Fallback,
	}
	if len(col.PerWorker) > 0 {
		ev.PerWorker = make([]telemetry.WorkerMark, len(col.PerWorker))
		for i, ws := range col.PerWorker {
			ev.PerWorker[i] = telemetry.WorkerMark{
				Worker: i, Marked: ws.Marked, Steals: ws.Steals, DurNs: ws.DurNs,
			}
		}
	}
	s.phases = nil
	if s.r.engine != nil {
		ev.Kinds = kindDeltas(s.engineBefore, s.r.engine.Stats())
	}
	// Cost attribution and the trigger explainer stamp the collection
	// record; copy them through so the event stream (and the live SSE feed)
	// carries the full operator view.
	if col.Trigger.Why != "" {
		ev.Trigger = col.Trigger.Why
		ev.OccupancyPct = col.Trigger.OccupancyPct
		ev.AllocRateWps = col.Trigger.AllocRateWps
		ev.TriggerThread = col.Trigger.ByThread
	}
	if len(col.AssertCost) > 0 {
		ev.Costs = make([]telemetry.AssertCost, len(col.AssertCost))
		for i, c := range col.AssertCost {
			ev.Costs[i] = telemetry.AssertCost{Kind: c.Kind, Checks: c.Checks, Ns: c.Ns}
		}
	}
	if s.r.pressure != nil {
		ev.Threads = make([]telemetry.ThreadAlloc, len(s.r.threads))
		for i, th := range s.r.threads {
			ev.Threads[i] = telemetry.ThreadAlloc{Name: th.name, Objects: th.allocObjects, Words: th.allocWords}
		}
	}
	hs := s.r.space.Stats()
	s.t.AddAllocations(hs.ObjectsAllocated-s.heapLast.ObjectsAllocated,
		hs.WordsAllocated-s.heapLast.WordsAllocated)
	s.heapLast = hs
	s.t.Record(ev)
}

// kindDeltas converts the engine-stats delta of one collection into
// per-kind check/violation counts. The natural-unit mapping lives in
// core.CheckDeltas, shared with the flight recorder and cost attribution so
// the unit definitions cannot drift.
func kindDeltas(before, after core.Stats) []telemetry.KindCount {
	checks := core.CheckDeltas(before, after)
	names := core.KindNames()
	out := make([]telemetry.KindCount, core.NumKinds)
	for k := 0; k < core.NumKinds; k++ {
		out[k] = telemetry.KindCount{
			Kind:       names[k],
			Checks:     checks[k],
			Violations: after.ViolationsByKind[k] - before.ViolationsByKind[k],
		}
	}
	return out
}
