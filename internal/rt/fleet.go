package rt

import (
	"gcassert/internal/collector"
	"gcassert/internal/fleet"
	"gcassert/internal/version"
)

// initFleet wires the fleet exporter: census envelopes ship every
// FleetEvery full collections, flight bundles on violation, both sealed
// under this runtime's identity and registry ref. The exporter observes
// last — after the census and flight observers — so by the time its GCEnd
// runs, the cycle's snapshot and recorder state are already in place.
// Network sends happen on the exporter's own goroutine; a dead collector
// costs the GC nothing.
func (r *Runtime) initFleet(cfg Config) {
	fx := fleet.NewExporter(fleet.ExportConfig{
		URL:         cfg.FleetURL,
		Every:       cfg.FleetEvery,
		Identity:    r.identity,
		RegistryRef: fleet.RegistryRef(r.reg),
	})
	if r.census != nil {
		fx.SetCensusSource(r.census.Latest)
	}
	if r.flight != nil {
		fx.SetBundleSource(r.flight.Bundle)
	}
	r.fleetx = fx
	if prev := r.gc.Observer; prev != nil {
		r.gc.Observer = collector.TeeObserver{prev, fx}
	} else {
		r.gc.Observer = fx
	}
}

// Identity returns the instance identity stamped on exported artifacts
// (flight bundles, census documents, fleet envelopes).
func (r *Runtime) Identity() version.Identity { return r.identity }

// FleetExporter exposes the fleet exporter, or nil when Config.FleetURL was
// empty.
func (r *Runtime) FleetExporter() *fleet.Exporter { return r.fleetx }

// CloseFleet flushes and stops the fleet exporter's sender goroutine, if
// one is running. Call once at shutdown; the final drain ships anything
// still queued.
func (r *Runtime) CloseFleet() {
	if r.fleetx != nil {
		r.fleetx.Close()
	}
}
