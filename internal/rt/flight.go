package rt

import (
	"sort"

	"gcassert/internal/collector"
	"gcassert/internal/core"
	"gcassert/internal/flight"
	"gcassert/internal/heap"
)

// initFlight wires the flight recorder into the full collector's observer
// chain and installs its data sources. Like the census, the recorder is
// attached only to r.gc: generational minor traces visit just the nursery,
// and recording them as cycles would make the ring's census deltas and kind
// activity nonsense. It is appended after the census observer so that by
// the time its GCEnd runs, the census already holds the cycle's snapshot
// and the delta can be computed against it.
func (r *Runtime) initFlight() {
	fr := r.flight
	if r.engine != nil {
		fr.SetStatsSource(r.engine.Stats)
	}
	if r.census != nil {
		fr.SetCensusSource(r.census.Latest)
	}
	fr.SetProfileSource(r.siteProfile)
	if prev := r.gc.Observer; prev != nil {
		r.gc.Observer = collector.TeeObserver{prev, fr}
	} else {
		r.gc.Observer = fr
	}
}

// flightViolation converts an engine violation into the flight recorder's
// retained form: the structured fields for machine consumption plus the
// full Figure-1 report for humans.
func flightViolation(v *core.Violation) flight.ViolationRecord {
	var path []string
	for i := range v.Path {
		step := v.Path[i].TypeName
		if f := v.Path[i].Field; f != "" {
			step += "." + f
		}
		path = append(path, step)
	}
	return flight.ViolationRecord{
		GC:       v.GC,
		Kind:     v.Kind.String(),
		TypeName: v.TypeName,
		Site:     v.Site,
		Root:     v.Root,
		Path:     path,
		Report:   v.String(),
	}
}

// siteProfile groups the live heap by (allocation site, type) for the
// flight recorder's pprof export. It walks every allocated object, so it
// must only run while the heap is consistent: between collections, or
// inside a stop-the-world pause before the sweep — which covers both dump
// triggers (on-demand and on-violation). Objects allocated before
// provenance was enabled, or skipped by sampling, group under the unknown
// site.
func (r *Runtime) siteProfile() []flight.SiteSample {
	s := r.space
	reg := s.Registry()
	type key struct {
		site heap.SiteID
		typ  heap.TypeID
	}
	acc := map[key]*flight.SiteSample{}
	var order []key
	s.ForEachObject(func(a heap.Addr) bool {
		k := key{site: s.SiteOf(a), typ: s.TypeOf(a)}
		sm := acc[k]
		if sm == nil {
			sm = &flight.SiteSample{Site: s.SiteDesc(a), Type: reg.Name(k.typ)}
			acc[k] = sm
			order = append(order, k)
		}
		sm.Objects++
		sm.Bytes += int64(reg.Info(k.typ).SizeWords(s.ArrayLen(a))) * heap.WordBytes
		return true
	})
	out := make([]flight.SiteSample, 0, len(order))
	for _, k := range order {
		out = append(out, *acc[k])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Type < out[j].Type
	})
	return out
}
