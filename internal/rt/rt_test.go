package rt

import (
	"testing"

	"gcassert/internal/core"
	"gcassert/internal/heap"
)

func newRT(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 2 << 20
	}
	return New(cfg)
}

func TestThreadFramesAreRoots(t *testing.T) {
	r := newRT(t, Config{})
	node := r.Define("Node", heap.Field{Name: "next", Ref: true})
	th := r.NewThread("main")
	fr := th.Push(1)
	a := th.New(node)
	fr.Set(0, a)
	r.Collect()
	if !r.Space().Contains(a) {
		t.Fatal("rooted object collected")
	}
	th.Pop()
	r.Collect()
	if r.Space().Contains(a) {
		t.Fatal("popped frame still a root")
	}
}

func TestGlobalsAreRoots(t *testing.T) {
	r := newRT(t, Config{})
	node := r.Define("Node", heap.Field{Name: "next", Ref: true})
	th := r.NewThread("main")
	g := r.NewGlobal("g")
	a := th.New(node)
	r.SetGlobal(g, a)
	r.Collect()
	if !r.Space().Contains(a) || r.GetGlobal(g) != a {
		t.Fatal("global lost")
	}
	r.SetGlobal(g, heap.Nil)
	r.Collect()
	if r.Space().Contains(a) {
		t.Fatal("cleared global kept object alive")
	}
}

func TestFrameAddTruncate(t *testing.T) {
	r := newRT(t, Config{})
	node := r.Define("Node", heap.Field{Name: "next", Ref: true})
	th := r.NewThread("main")
	fr := th.Push(1)
	base := fr.Len()
	a := th.New(node)
	sl := fr.Add(a)
	if fr.Len() != base+1 || fr.Get(sl) != a {
		t.Error("Add")
	}
	fr.Truncate(base)
	if fr.Len() != base {
		t.Error("Truncate")
	}
	mustPanic(t, "truncate grow", func() { fr.Truncate(base + 5) })
	mustPanic(t, "truncate negative", func() { fr.Truncate(-1) })
	mustPanic(t, "pop empty", func() {
		th2 := r.NewThread("t2")
		th2.Pop()
	})
	if th.Depth() != 1 {
		t.Errorf("Depth = %d", th.Depth())
	}
}

func TestAllocTriggersGCAndOOM(t *testing.T) {
	r := newRT(t, Config{HeapBytes: 2 * heap.BlockBytes})
	th := r.NewThread("main")
	// Transient churn succeeds indefinitely thanks to collect-on-failure.
	for i := 0; i < 1000; i++ {
		th.NewArray(heap.TWordArray, 1000)
	}
	if r.Collector().GCCount() == 0 {
		t.Fatal("no collections happened")
	}
	// Retaining everything eventually panics with *OOMError.
	fr := th.Push(0)
	defer func() {
		r := recover()
		if _, ok := r.(*OOMError); !ok {
			t.Fatalf("recover = %v, want *OOMError", r)
		}
	}()
	for i := 0; i < 100000; i++ {
		fr.Add(th.NewArray(heap.TWordArray, 1000))
	}
	t.Fatal("expected OOM")
}

func TestAssertionsRequireInfrastructure(t *testing.T) {
	r := newRT(t, Config{Infrastructure: false})
	node := r.Define("Node", heap.Field{Name: "next", Ref: true})
	th := r.NewThread("main")
	fr := th.Push(1)
	a := th.New(node)
	fr.Set(0, a)
	mustPanic(t, "AssertDead", func() { r.AssertDead(a) })
	mustPanic(t, "AssertUnshared", func() { r.AssertUnshared(a) })
	mustPanic(t, "AssertInstances", func() { r.AssertInstances(node, 1) })
	mustPanic(t, "AssertOwnedBy", func() { r.AssertOwnedBy(a, a) })
	mustPanic(t, "StartRegion", func() { th.StartRegion() })
	if r.Engine() != nil {
		t.Error("engine should be nil in base mode")
	}
}

func TestRegionViaThread(t *testing.T) {
	rep := &core.CollectingReporter{}
	r := newRT(t, Config{Infrastructure: true, Reporter: rep})
	node := r.Define("Node", heap.Field{Name: "next", Ref: true})
	th := r.NewThread("main")
	fr := th.Push(1)
	th.StartRegion()
	if !th.InRegion() {
		t.Error("InRegion")
	}
	var escape heap.Addr
	for i := 0; i < 10; i++ {
		o := th.New(node)
		if i == 5 {
			escape = o
			fr.Set(0, o)
		}
	}
	if n := th.AssertAllDead(); n != 10 {
		t.Errorf("AssertAllDead = %d", n)
	}
	if th.InRegion() {
		t.Error("region still open")
	}
	mustPanic(t, "double AssertAllDead", func() { th.AssertAllDead() })
	r.Collect()
	vs := rep.ByKind(core.KindDead)
	if len(vs) != 1 || vs[0].Object != escape {
		t.Errorf("violations = %v", vs)
	}
}

func TestThreadsIndependentRegions(t *testing.T) {
	r := newRT(t, Config{Infrastructure: true})
	node := r.Define("Node", heap.Field{Name: "next", Ref: true})
	t1 := r.NewThread("a")
	t2 := r.NewThread("b")
	t1.StartRegion()
	// t2 allocations are not tracked by t1's region.
	t2.New(node)
	if n := t1.AssertAllDead(); n != 0 {
		t.Errorf("thread isolation broken: %d", n)
	}
	if t1.ID() == t2.ID() || t1.Name() != "a" {
		t.Error("thread identity")
	}
}

func TestDefaultHeapSize(t *testing.T) {
	r := New(Config{})
	if r.Space().CapacityWords() < (64<<20)/heap.WordBytes {
		t.Error("default heap too small")
	}
}

func TestOOMErrorMessage(t *testing.T) {
	e := &OOMError{Type: 7, Len: 3, Live: heap.Stats{LiveObjects: 10, LiveWords: 100}}
	if e.Error() == "" {
		t.Error("empty error")
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}
