package rt

import (
	"testing"

	"gcassert/internal/core"
	"gcassert/internal/heap"
)

// newGen builds a generational runtime with a small heap.
func newGen(t *testing.T, ratio int, rep core.Reporter) *Runtime {
	t.Helper()
	return New(Config{
		HeapBytes:      2 << 20,
		Infrastructure: true,
		Reporter:       rep,
		Generational:   true,
		MinorRatio:     ratio,
	})
}

// churn allocates and drops garbage until at least n collections happened.
func churn(r *Runtime, th *Thread, node heap.TypeID, collections uint64) {
	for r.Collector().Stats().Collections+r.MinorGCStats().Collections < collections {
		fr := th.Push(1)
		var head heap.Addr
		for i := 0; i < 5000; i++ {
			nd := th.New(node)
			r.Space().SetRef(nd, 0, head)
			head = nd
			fr.Set(0, head)
		}
		th.Pop()
	}
}

func TestGenerationalNeverFreesLiveObjects(t *testing.T) {
	r := newGen(t, 4, nil)
	node := r.Define("Node", heap.Field{Name: "next", Ref: true})
	th := r.NewThread("main")
	fr := th.Push(1)

	// A long-lived list that survives many minor and full collections.
	var keep []heap.Addr
	var head heap.Addr
	for i := 0; i < 1000; i++ {
		nd := th.New(node)
		r.Space().SetRef(nd, 0, head)
		head = nd
		fr.Set(0, head)
		keep = append(keep, nd)
	}
	churn(r, th, node, 30)
	for _, a := range keep {
		if !r.Space().Contains(a) {
			t.Fatal("live object freed in generational mode")
		}
		if r.Space().TypeOf(a) != node {
			t.Fatal("object corrupted")
		}
	}
	minors, fulls, ok := r.GenStats()
	if !ok || minors == 0 || fulls == 0 {
		t.Errorf("gen stats: minors=%d fulls=%d ok=%v", minors, fulls, ok)
	}
}

func TestGenerationalWriteBarrierOldToNew(t *testing.T) {
	r := newGen(t, 1000, nil) // effectively never a full GC on its own
	node := r.Define("Node", heap.Field{Name: "next", Ref: true})
	th := r.NewThread("main")
	fr := th.Push(1)

	old := th.New(node)
	fr.Set(0, old)
	// Promote old: minor collections happen during churn.
	churn(r, th, node, 3)
	if !r.Space().Marked(old) {
		t.Fatal("old object not sticky-marked; test setup broken")
	}
	// Store a brand-new object into the old object's field; the new object
	// has no other reference. Without the write barrier the next minor GC
	// would free it.
	young := th.New(node)
	r.Space().SetRef(old, 0, young)
	churn(r, th, node, r.Collector().Stats().Collections+r.MinorGCStats().Collections+3)
	if !r.Space().Contains(young) {
		t.Fatal("old->new reference lost: write barrier / remembered set broken")
	}
	if r.Space().TypeOf(young) != node {
		t.Fatal("young corrupted")
	}
}

func TestGenerationalAssertionDelayedToFullGC(t *testing.T) {
	rep := &core.CollectingReporter{}
	r := newGen(t, 6, rep)
	node := r.Define("Node", heap.Field{Name: "next", Ref: true})
	th := r.NewThread("main")
	fr := th.Push(1)
	leak := th.New(node)
	fr.Set(0, leak)
	r.AssertDead(leak)

	// Minor collections do not check assertions.
	for i := 0; i < 3; i++ {
		r.gen.minorCollect("test")
	}
	if rep.Len() != 0 {
		t.Fatalf("minor GCs checked assertions: %v", rep.Violations())
	}
	// The full collection reports the violation (§2.2).
	r.Collect()
	if rep.Len() != 1 {
		t.Fatalf("full GC missed the violation: %d", rep.Len())
	}
}

func TestGenerationalRegionQueueSafeAcrossMinor(t *testing.T) {
	rep := &core.CollectingReporter{}
	r := newGen(t, 1000, rep)
	node := r.Define("Node", heap.Field{Name: "next", Ref: true})
	th := r.NewThread("main")
	th.StartRegion()
	for i := 0; i < 100; i++ {
		th.New(node) // garbage inside the region
	}
	// Minor collections free the region garbage; the weak queue must be
	// pruned (via PreSweep) so no stale addresses remain.
	r.gen.minorCollect("test")
	n := th.AssertAllDead()
	if n != 0 {
		t.Errorf("queue kept %d stale entries after minor GC", n)
	}
	r.Collect()
	if rep.Len() != 0 {
		t.Fatalf("stale region entries caused violations: %v", rep.Violations())
	}
}

func TestGenerationalForcedCollectIsFull(t *testing.T) {
	r := newGen(t, 4, nil)
	node := r.Define("Node", heap.Field{Name: "next", Ref: true})
	th := r.NewThread("main")
	th.New(node) // garbage
	col := r.Collect()
	if col.Reason != "forced" {
		t.Errorf("reason = %q", col.Reason)
	}
	_, fulls, _ := r.GenStats()
	if fulls != 1 {
		t.Errorf("fulls = %d", fulls)
	}
}

func TestNonGenerationalGenStats(t *testing.T) {
	r := New(Config{HeapBytes: 2 << 20})
	if _, _, ok := r.GenStats(); ok {
		t.Error("GenStats ok on non-generational runtime")
	}
	if st := r.MinorGCStats(); st.Collections != 0 {
		t.Error("MinorGCStats non-zero")
	}
}
