package rt

import (
	"fmt"

	"gcassert/internal/collector"
	"gcassert/internal/heap"
)

// Thread is a mutator context. Its frames' slots are scanned as GC roots.
// Threads are cooperative: they share the runtime's single-goroutine
// stop-the-world discipline, like the logical threads of the paper's
// benchmarks under a stop-the-world collector.
type Thread struct {
	rt       *Runtime
	id       uint64
	name     string
	frames   []*Frame
	inRegion bool

	// allocObjects/allocWords count this thread's allocations cumulatively;
	// windowWords is the explainer's per-window snapshot. Maintained only
	// when the runtime's pressure tracker is on (one nil-check per
	// allocation otherwise).
	allocObjects uint64
	allocWords   uint64
	windowWords  uint64
}

// Frame is one shadow-stack frame holding local reference slots.
type Frame struct {
	slots []heap.Addr
	desc  string
}

// ID returns the thread's identifier.
func (t *Thread) ID() uint64 { return t.id }

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// Push creates a frame with n local slots and returns it.
func (t *Thread) Push(n int) *Frame {
	f := &Frame{slots: make([]heap.Addr, n), desc: t.name + ".locals"}
	t.frames = append(t.frames, f)
	return f
}

// Pop discards the top frame; its slots stop being roots.
func (t *Thread) Pop() {
	if len(t.frames) == 0 {
		panic("rt: Pop on empty frame stack")
	}
	t.frames = t.frames[:len(t.frames)-1]
}

// Depth returns the number of live frames.
func (t *Thread) Depth() int { return len(t.frames) }

// Set stores a reference in slot i.
func (f *Frame) Set(i int, v heap.Addr) { f.slots[i] = v }

// Get loads slot i.
func (f *Frame) Get(i int) heap.Addr { return f.slots[i] }

// Add appends a new slot holding v and returns its index.
func (f *Frame) Add(v heap.Addr) int {
	f.slots = append(f.slots, v)
	return len(f.slots) - 1
}

// Len returns the number of slots in the frame.
func (f *Frame) Len() int { return len(f.slots) }

// Truncate shrinks the frame back to n slots, dropping the roots above it.
// Recursive allocation patterns pair Add with Truncate the way a real stack
// frame's locals go out of scope.
func (f *Frame) Truncate(n int) {
	if n < 0 || n > len(f.slots) {
		panic("rt: Truncate out of range")
	}
	f.slots = f.slots[:n]
}

// New allocates an object of type typ, collecting (and, in generational
// mode, escalating from minor to full collection) when the heap is
// exhausted. It panics with *OOMError if memory cannot be found.
func (t *Thread) New(typ heap.TypeID) heap.Addr { return t.alloc(typ, 0, 0) }

// NewArray allocates an array of type typ with n elements.
func (t *Thread) NewArray(typ heap.TypeID, n int) heap.Addr { return t.alloc(typ, n, 0) }

// NewAt allocates like New and records the allocation site (from
// Runtime.RegisterAllocSite) against the object, subject to the provenance
// sampling rate. With provenance disabled, RegisterAllocSite returns the
// unknown site and NewAt degrades to New with no extra work.
func (t *Thread) NewAt(typ heap.TypeID, site heap.SiteID) heap.Addr { return t.alloc(typ, 0, site) }

// NewArrayAt allocates like NewArray and records the allocation site.
func (t *Thread) NewArrayAt(typ heap.TypeID, n int, site heap.SiteID) heap.Addr {
	return t.alloc(typ, n, site)
}

func (t *Thread) alloc(typ heap.TypeID, n int, site heap.SiteID) heap.Addr {
	r := t.rt
	a, ok := r.space.Allocate(typ, n)
	if !ok {
		r.collectForAlloc()
		a, ok = r.space.Allocate(typ, n)
		if !ok && r.gen != nil {
			// Minor collection was not enough: escalate to a full cycle. The
			// pressure tracker is told, so the trigger explainer can tell an
			// escalation from a ratio rollover.
			if r.pressure != nil {
				r.pressure.escalating = true
			}
			r.gen.fullCollect(collector.ReasonAllocFailure.Full())
			if r.pressure != nil {
				r.pressure.escalating = false
			}
			a, ok = r.space.Allocate(typ, n)
		}
		if !ok {
			panic(&OOMError{Type: typ, Len: n, Live: r.space.Stats()})
		}
	}
	if r.pressure != nil {
		t.allocObjects++
		t.allocWords += uint64(r.space.CellWords(a))
	}
	if site != 0 {
		r.space.RecordSite(a, site)
	}
	if t.inRegion {
		r.engine.RecordRegionAlloc(t.id, a)
	}
	return a
}

// collectForAlloc runs the collection policy for an allocation failure.
func (r *Runtime) collectForAlloc() {
	if r.gen != nil {
		r.gen.collect(collector.ReasonAllocFailure)
		return
	}
	r.gc.Collect(collector.ReasonAllocFailure)
}

// StartRegion opens a start-region bracket on this thread (§2.3.2): every
// object the thread allocates until AssertAllDead is recorded.
func (t *Thread) StartRegion() {
	t.rt.mustEngine("StartRegion").StartRegion(t.id)
	t.inRegion = true
}

// InRegion reports whether the thread has an open region.
func (t *Thread) InRegion() bool { return t.inRegion }

// AssertAllDead closes the region and asserts death of everything allocated
// in it that is still live, returning the number of objects asserted.
func (t *Thread) AssertAllDead() int {
	if !t.inRegion {
		panic(fmt.Sprintf("rt: AssertAllDead on thread %q with no active region", t.name))
	}
	t.inRegion = false
	return t.rt.engine.AssertAllDead(t.id)
}
