package rt

import (
	"fmt"
	"time"

	"gcassert/internal/collector"
	"gcassert/internal/heap"
)

// Mutator-side heap-pressure accounting and the trigger explainer. Enabled
// by Config.CostAttribution; disabled (the default) the allocation path pays
// one nil-check and collections pay one nil-check for the explainer hook.
//
// The explainer runs at the top of every collection, inside the
// stop-the-world pause, and answers the operator question the raw Reason
// label cannot: *why now, and who did it* — occupancy at trigger time, the
// allocation-rate EWMA over recent inter-GC windows, and the dominant
// allocating thread (and site, when provenance is on) since the previous
// collection.

// OccupancySample is one point on the heap-occupancy timeline: occupancy at
// a collection trigger.
type OccupancySample struct {
	UnixNs int64   `json:"unix_ns"`
	Pct    float64 `json:"pct"`
}

// ThreadAllocStats is one thread's cumulative allocation volume.
type ThreadAllocStats struct {
	Name    string `json:"name"`
	Objects uint64 `json:"objects"`
	Words   uint64 `json:"words"`
}

// PressureStats is the mutator-side pressure snapshot exposed through
// Runtime.Pressure.
type PressureStats struct {
	// AllocRateWps is the allocation-rate EWMA in words/second (0 until one
	// inter-GC window has completed).
	AllocRateWps float64
	// Occupancy is the occupancy timeline, oldest first (bounded ring of
	// trigger-time samples).
	Occupancy []OccupancySample
	// Threads is the cumulative per-thread allocation volume, in thread
	// creation order.
	Threads []ThreadAllocStats
}

// occupancyTimelineCap bounds the retained occupancy samples; ewmaAlpha is
// the allocation-rate smoothing factor (weight of the newest window).
const (
	occupancyTimelineCap = 256
	ewmaAlpha            = 0.3
)

// pressure is the runtime's pressure tracker. Like the rest of the runtime
// it runs under the single-goroutine stop-the-world discipline, so plain
// fields need no synchronization.
type pressure struct {
	r *Runtime

	// lastNs / lastWords delimit the previous explain call's window for the
	// allocation-rate EWMA.
	lastNs    int64
	lastWords uint64
	ewmaWps   float64

	// escalating is set by the allocation path around a minor→full
	// escalation, so the explainer can tell it apart from a ratio rollover.
	escalating bool

	// siteNow/sitePrev are reusable per-site counter buffers for
	// dominant-site attribution (nothing is allocated once the site set is
	// stable).
	siteNow  []uint64
	sitePrev []uint64

	// timeline is a bounded ring of trigger-time occupancy samples; tlLen
	// tracks the fill, tlNext the write cursor.
	timeline [occupancyTimelineCap]OccupancySample
	tlNext   int
	tlLen    int
}

func newPressure(r *Runtime) *pressure { return &pressure{r: r} }

// explain implements collector.ExplainTrigger. It samples occupancy, rolls
// the allocation-rate EWMA over the window since the previous trigger,
// appends to the occupancy timeline, and names the dominant allocating
// thread (and site, with provenance) of the window.
func (p *pressure) explain(reason collector.Reason) collector.Trigger {
	r := p.r
	now := time.Now().UnixNano()
	occ := r.space.OccupancyPct()
	hs := r.space.Stats()

	if p.lastNs != 0 && now > p.lastNs {
		inst := float64(hs.WordsAllocated-p.lastWords) / (float64(now-p.lastNs) / 1e9)
		if p.ewmaWps == 0 {
			p.ewmaWps = inst
		} else {
			p.ewmaWps = ewmaAlpha*inst + (1-ewmaAlpha)*p.ewmaWps
		}
	}
	p.lastNs = now
	p.lastWords = hs.WordsAllocated

	p.timeline[p.tlNext] = OccupancySample{UnixNs: now, Pct: occ}
	p.tlNext = (p.tlNext + 1) % occupancyTimelineCap
	if p.tlLen < occupancyTimelineCap {
		p.tlLen++
	}

	tr := collector.Trigger{OccupancyPct: occ, AllocRateWps: p.ewmaWps}

	// Dominant allocating thread since the previous trigger. The per-thread
	// window snapshots live on the threads themselves.
	for _, th := range r.threads {
		d := th.allocWords - th.windowWords
		th.windowWords = th.allocWords
		if d > tr.ByThreadWords {
			tr.ByThreadWords = d
			tr.ByThread = th.name
		}
	}

	// Dominant allocating site, when provenance is recording.
	if prov := r.space.Provenance(); prov != nil {
		p.siteNow = prov.SiteAllocs(p.siteNow)
		var best uint64
		bestSite := 0
		for i, n := range p.siteNow {
			var prev uint64
			if i < len(p.sitePrev) {
				prev = p.sitePrev[i]
			}
			if d := n - prev; d > best {
				best = d
				bestSite = i
			}
		}
		if best > 0 {
			tr.BySite = prov.Name(heap.SiteID(bestSite))
		}
		p.siteNow, p.sitePrev = p.sitePrev, p.siteNow
	}

	tr.Why = p.why(reason, occ)
	return tr
}

// why renders the one-line explanation for the reason, in trigger-cause
// terms rather than mechanism terms.
func (p *pressure) why(reason collector.Reason, occ float64) string {
	g := p.r.gen
	switch reason {
	case collector.ReasonAllocFailure:
		if g != nil {
			return fmt.Sprintf("heap exhausted at %.0f%% occupancy; minor (sticky-mark) collection %d/%d since last full",
				occ, g.sinceFull+1, g.ratio)
		}
		return fmt.Sprintf("heap exhausted at %.0f%% occupancy", occ)
	case collector.ReasonAllocFailure.Full():
		switch {
		case p.escalating:
			return fmt.Sprintf("minor collection freed too little; escalated to full heap at %.0f%% occupancy", occ)
		case g != nil && g.sinceFull >= g.ratio:
			return fmt.Sprintf("minor-GC ratio rollover (%d minors since last full); full collection at %.0f%% occupancy",
				g.sinceFull, occ)
		default:
			return fmt.Sprintf("heap exhausted at %.0f%% occupancy; full collection", occ)
		}
	case collector.ReasonForced:
		if g != nil {
			return "explicit Collect call (full heap)"
		}
		return "explicit Collect call"
	case collector.ReasonForced.Full():
		return "explicit Collect call escalated to full heap"
	default:
		return fmt.Sprintf("collection requested (%s) at %.0f%% occupancy", reason, occ)
	}
}

// snapshot builds the PressureStats view.
func (p *pressure) snapshot() PressureStats {
	r := p.r
	ps := PressureStats{AllocRateWps: p.ewmaWps}
	if p.tlLen > 0 {
		ps.Occupancy = make([]OccupancySample, p.tlLen)
		start := (p.tlNext - p.tlLen + occupancyTimelineCap) % occupancyTimelineCap
		for i := 0; i < p.tlLen; i++ {
			ps.Occupancy[i] = p.timeline[(start+i)%occupancyTimelineCap]
		}
	}
	ps.Threads = make([]ThreadAllocStats, len(r.threads))
	for i, th := range r.threads {
		ps.Threads[i] = ThreadAllocStats{Name: th.name, Objects: th.allocObjects, Words: th.allocWords}
	}
	return ps
}

// Pressure returns the mutator-side pressure snapshot; ok is false when cost
// attribution (which carries the pressure tracker) is disabled.
func (r *Runtime) Pressure() (PressureStats, bool) {
	if r.pressure == nil {
		return PressureStats{}, false
	}
	return r.pressure.snapshot(), true
}
