package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float-valued counter (e.g.
// attributed seconds). Add is lock-free: a CAS loop over the value's IEEE
// bits, the standard trick for atomic float accumulation.
type FloatCounter struct{ bits atomic.Uint64 }

// Add increments by v (v must be >= 0 to keep the counter monotonic).
func (c *FloatCounter) Add(v float64) {
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add increments by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a settable float-valued instantaneous value (ratios, burn
// rates). Set/Value are atomic over the value's IEEE bits.
type FloatGauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Label is one metric label pair.
type Label struct{ Name, Value string }

// series is one labeled time series within a family.
type series struct {
	labels   string // rendered {k="v",...} suffix, "" when unlabeled
	counter  *Counter
	fcounter *FloatCounter
	gauge    *Gauge
	fgauge   *FloatGauge
	hist     *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration is idempotent: asking for an existing
// name+labels pair returns the same metric, so hot paths may look metrics
// up lazily.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{families: make(map[string]*family)} }

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(l.Value)
		fmt.Fprintf(&b, `%s="%s"`, l.Name, v)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup finds or creates the series for name+labels, verifying the type.
func (r *Registry) lookup(name, help, typ string, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	ls := renderLabels(labels)
	for _, s := range f.series {
		if s.labels == ls {
			return s
		}
	}
	s := &series{labels: ls}
	f.series = append(f.series, s)
	return s
}

// Counter finds or creates a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, "counter", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// FloatCounter finds or creates a float-valued counter. It renders as a
// Prometheus counter; a name may hold integer or float series, not both.
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	s := r.lookup(name, help, "counter", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.counter != nil {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as float counter (was integer)", name))
	}
	if s.fcounter == nil {
		s.fcounter = &FloatCounter{}
	}
	return s.fcounter
}

// Gauge finds or creates a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, "gauge", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// FloatGauge finds or creates a float-valued gauge. It renders as a
// Prometheus gauge; a name may hold integer or float series, not both.
func (r *Registry) FloatGauge(name, help string, labels ...Label) *FloatGauge {
	s := r.lookup(name, help, "gauge", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge != nil {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as float gauge (was integer)", name))
	}
	if s.fgauge == nil {
		s.fgauge = &FloatGauge{}
	}
	return s.fgauge
}

// Histogram finds or creates a histogram over bounds (seconds, ascending).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, "histogram", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		s.hist = NewHistogram(bounds)
	}
	return s.hist
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// histLabels splices the le label into an existing rendered label set.
func histLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and series by
// label set, so output is deterministic. Safe to call while metrics are
// being updated.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	type famCopy struct {
		family
		ss []*series
	}
	fams := make([]famCopy, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		ss := append([]*series(nil), f.series...)
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		fams = append(fams, famCopy{family: *f, ss: ss})
	}
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.ss {
			var err error
			switch {
			case s.counter != nil:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.counter.Value())
			case s.fcounter != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.fcounter.Value()))
			case s.gauge != nil:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.gauge.Value())
			case s.fgauge != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.fgauge.Value()))
			case s.hist != nil:
				err = writeHist(w, f.name, s.labels, s.hist)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHist(w io.Writer, name, labels string, h *Histogram) error {
	// A quantile summary rides along as a comment: the text exposition
	// format ignores comment lines that are not HELP/TYPE, so scrapers are
	// unaffected while a human curl gets the percentiles for free.
	if p50, p95, p99 := h.Summary(); h.Count() > 0 {
		if _, err := fmt.Fprintf(w, "# %s%s summary: p50=%v p95=%v p99=%v max=%v\n",
			name, labels, p50, p95, p99, h.Max()); err != nil {
			return err
		}
	}
	counts := h.snapshot()
	exemplars := h.exemplars()
	var cum uint64
	for i, b := range h.bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, histLabels(labels, formatFloat(b)),
			cum, exemplarSuffix(exemplars, i)); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, histLabels(labels, "+Inf"),
		cum, exemplarSuffix(exemplars, len(counts)-1)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum().Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
	return err
}

// exemplarSuffix renders a bucket's trace exemplar in OpenMetrics syntax
// (" # {trace_id=\"...\"} value timestamp"), or "" when the bucket has
// none. Prometheus's text parser ignores the suffix; OpenMetrics scrapers
// and humans get a trace ID that resolves against the trace store.
func exemplarSuffix(ex map[int]Exemplar, bucket int) string {
	e, ok := ex[bucket]
	if !ok {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=\"%s\"} %s %s",
		e.TraceID, formatFloat(e.Value), formatFloat(float64(e.UnixNs)/1e9))
}
