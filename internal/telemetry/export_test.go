package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// testEvents builds a deterministic two-collection trace anchored at start.
func testEvents(start time.Time) []Event {
	t0 := start.UnixNano()
	return []Event{
		{
			Seq: 0, Reason: "alloc-failure", StartUnixNs: t0 + 1_000_000, TotalNs: 3_000_000,
			Phases: []PhaseSpan{
				{Phase: "mark", StartUnixNs: t0 + 1_000_000, DurNs: 2_000_000},
				{Phase: "sweep", StartUnixNs: t0 + 3_000_000, DurNs: 1_000_000},
			},
			RootsScanned: 10, ObjectsMarked: 100, ObjectsFreed: 20, ObjectsLive: 100, WordsFreed: 80,
		},
		{
			Seq: 1, Reason: "forced", StartUnixNs: t0 + 10_000_000, TotalNs: 6_000_000,
			Phases: []PhaseSpan{
				{Phase: "ownership", StartUnixNs: t0 + 10_000_000, DurNs: 1_000_000},
				{Phase: "mark", StartUnixNs: t0 + 11_000_000, DurNs: 4_000_000},
				{Phase: "sweep", StartUnixNs: t0 + 15_000_000, DurNs: 1_000_000},
			},
			RootsScanned: 12, ObjectsMarked: 150, ObjectsFreed: 5, ObjectsLive: 150, WordsFreed: 20,
			Kinds: []KindCount{{Kind: "assert-dead", Checks: 3, Violations: 1}},
		},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	start := time.Unix(1_000_000, 0)
	events := testEvents(start)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	var got []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", len(got)+1, err)
		}
		got = append(got, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, events)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	start := time.Unix(1_000_000, 0)
	events := testEvents(start)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", tr.DisplayTimeUnit)
	}

	var gcSlices, phaseSlices []int
	for i, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X":
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("event %d (%s): negative ts/dur %v/%v", i, ev.Name, ev.Ts, ev.Dur)
			}
			switch ev.Cat {
			case "gc":
				gcSlices = append(gcSlices, i)
			case "gc-phase":
				phaseSlices = append(phaseSlices, i)
			default:
				t.Errorf("event %d: unexpected cat %q", i, ev.Cat)
			}
		default:
			t.Errorf("event %d: unexpected ph %q", i, ev.Ph)
		}
	}
	if len(gcSlices) != len(events) {
		t.Fatalf("%d gc slices, want %d", len(gcSlices), len(events))
	}
	wantPhases := 0
	for i := range events {
		wantPhases += len(events[i].Phases)
	}
	if len(phaseSlices) != wantPhases {
		t.Fatalf("%d phase slices, want %d", len(phaseSlices), wantPhases)
	}

	// GC slice timestamps are monotonic, relative to the first event, and
	// durations match the source events (µs units).
	prev := -1.0
	for n, i := range gcSlices {
		ev := tr.TraceEvents[i]
		if ev.Ts <= prev && n > 0 {
			t.Errorf("gc slice %d: ts %v not after %v", n, ev.Ts, prev)
		}
		prev = ev.Ts
		src := &events[n]
		wantTs := float64(src.StartUnixNs-events[0].StartUnixNs) / 1e3
		if ev.Ts != wantTs {
			t.Errorf("gc slice %d: ts = %v µs, want %v", n, ev.Ts, wantTs)
		}
		if want := float64(src.TotalNs) / 1e3; ev.Dur != want {
			t.Errorf("gc slice %d: dur = %v µs, want %v", n, ev.Dur, want)
		}
		if ev.Args["reason"] != src.Reason {
			t.Errorf("gc slice %d: reason arg = %v, want %s", n, ev.Args["reason"], src.Reason)
		}
	}
	// The second event's assertion summary shows up on its slice.
	if args := tr.TraceEvents[gcSlices[1]].Args; args["assert-dead"] != "3 checks, 1 violations" {
		t.Errorf("kind summary = %v", args["assert-dead"])
	}
}

func TestGoTraceLine(t *testing.T) {
	start := time.Unix(1_000_000, 0)
	events := testEvents(start)
	line := GoTraceLine(&events[1], start, 0.1)
	want := "gc 2 @0.010s 10%: 1.00+4.00+1.00 ms own+mark+sweep, 150 marked, 5 freed, 150 live (forced)"
	if line != want {
		t.Errorf("GoTraceLine:\ngot  %s\nwant %s", line, want)
	}

	var buf bytes.Buffer
	if err := WriteGoTrace(&buf, events, start); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3 (two events plus the pause-summary footer)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "gc 1 @0.001s ") {
		t.Errorf("line 1 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "gc 2 @0.010s ") {
		t.Errorf("line 2 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "# pause summary: ") {
		t.Errorf("line 3 = %q, want the pause-summary footer", lines[2])
	}
}
