package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramSummaryOrdering(t *testing.T) {
	h := NewHistogram(DefaultPauseBuckets())
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	p50, p95, p99 := h.Summary()
	if p50 <= 0 || p50 > p95 || p95 > p99 || p99 > h.Max() {
		t.Fatalf("summary not ordered: p50=%v p95=%v p99=%v max=%v", p50, p95, p99, h.Max())
	}
}

// TestPrometheusHistogramSummaryLine pins the human-readable percentile
// comment emitted above each populated histogram: present once values were
// observed, absent (so scrapers of an idle process see pure exposition
// output) before.
func TestPrometheusHistogramSummaryLine(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("x_seconds", "test histogram", DefaultPauseBuckets())

	var empty strings.Builder
	if err := reg.WritePrometheus(&empty); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(empty.String(), "summary:") {
		t.Fatalf("empty histogram rendered a summary line:\n%s", empty.String())
	}

	h.Observe(3 * time.Millisecond)
	h.Observe(7 * time.Millisecond)
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	line := ""
	for _, l := range strings.Split(out.String(), "\n") {
		if strings.HasPrefix(l, "# x_seconds summary:") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no summary comment line in:\n%s", out.String())
	}
	for _, want := range []string{"p50=", "p95=", "p99=", "max="} {
		if !strings.Contains(line, want) {
			t.Fatalf("summary line %q missing %q", line, want)
		}
	}
	// Comment lines other than HELP/TYPE must be ignored by scrapers; make
	// sure it renders as a comment.
	if !strings.HasPrefix(line, "# ") || strings.HasPrefix(line, "# HELP") || strings.HasPrefix(line, "# TYPE") {
		t.Fatalf("summary must be a plain comment line, got %q", line)
	}
}

func TestFloatCounter(t *testing.T) {
	reg := NewRegistry()
	fc := reg.FloatCounter("cost_seconds", "test float counter", Label{"kind", "dead"})
	fc.Add(0.5)
	fc.Add(0.25)
	if v := fc.Value(); v != 0.75 {
		t.Fatalf("value %v, want 0.75", v)
	}
	if again := reg.FloatCounter("cost_seconds", "test float counter", Label{"kind", "dead"}); again != fc {
		t.Fatal("FloatCounter lookup is not idempotent")
	}
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `cost_seconds{kind="dead"} 0.75`) {
		t.Fatalf("float counter not rendered:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "# TYPE cost_seconds counter") {
		t.Fatalf("float counter must expose as TYPE counter:\n%s", out.String())
	}
}

func TestFloatCounterIntMixPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mixed_total", "int first")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on float re-registration of an integer counter")
		}
	}()
	reg.FloatCounter("mixed_total", "float second")
}

// TestGoTracePauseSummary pins the percentile footer of the gctrace export.
func TestGoTracePauseSummary(t *testing.T) {
	start := time.Unix(0, 0)
	events := []Event{
		{Seq: 0, Reason: "forced", StartUnixNs: 1e6, TotalNs: 2e6},
		{Seq: 1, Reason: "forced", StartUnixNs: 5e6, TotalNs: 4e6},
	}
	var out strings.Builder
	if err := WriteGoTrace(&out, events, start); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# pause summary: p50=") ||
		!strings.Contains(out.String(), "p95=") ||
		!strings.Contains(out.String(), "max=4ms (2 collections)") {
		t.Fatalf("missing pause summary footer:\n%s", out.String())
	}

	out.Reset()
	if err := WriteGoTrace(&out, nil, start); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "pause summary") {
		t.Fatalf("empty trace rendered a summary footer:\n%s", out.String())
	}
}
