// Package telemetry is the observability layer for the gcassert runtime:
// a structured GC event trace (fixed-size lock-free ring buffer, drainable
// as JSONL, a Go gctrace-style log, or Chrome trace_event JSON for
// chrome://tracing / Perfetto), a metrics registry (counters, gauges, a
// log-bucketed pause histogram) rendered in Prometheus text exposition
// format, and an opt-in net/http surface.
//
// The package is a leaf: it imports only the standard library and the
// equally leaf-like internal/sse fan-out hub behind the live feed. The
// collector, assertion engine and runtime feed it through the
// collector.Observer hook wired up by internal/rt; when telemetry is
// disabled nothing here is ever constructed and the collector pays one
// nil-check per phase.
//
// All read paths (Events, metric reads, Prometheus rendering, the HTTP
// handlers except the heap profile) are safe to call concurrently with a
// running workload: the ring uses atomic pointers, metrics use atomics,
// and the violation log is mutex-protected.
package telemetry

import "time"

// PhaseSpan is one timed phase of a collection, with an exact wall-clock
// window (the duration is the collector's authoritative measurement, so
// per-phase sums over the trace match the collector's cumulative stats).
type PhaseSpan struct {
	// Phase is the phase label: "ownership", "mark" or "sweep".
	Phase string `json:"phase"`
	// StartUnixNs is the phase's wall-clock start, Unix nanoseconds.
	StartUnixNs int64 `json:"start_unix_ns"`
	// DurNs is the phase duration in nanoseconds.
	DurNs int64 `json:"dur_ns"`
}

// KindCount is per-assertion-kind activity within one collection.
type KindCount struct {
	// Kind is the assertion kind label (e.g. "assert-dead").
	Kind string `json:"kind"`
	// Checks is the number of checks of this kind performed during the
	// collection; Violations the number reported.
	Checks     uint64 `json:"checks"`
	Violations uint64 `json:"violations"`
}

// AssertCost attributes one assertion kind's share of a collection: checks
// performed (exact counter deltas, in the kind's natural unit) and
// slow-path time in nanoseconds.
type AssertCost struct {
	Kind   string `json:"kind"`
	Checks uint64 `json:"checks"`
	Ns     int64  `json:"ns"`
}

// ThreadAlloc is one mutator thread's cumulative allocation volume at the
// time of the event (consumers diff successive events for rates).
type ThreadAlloc struct {
	Name    string `json:"name"`
	Objects uint64 `json:"objects"`
	Words   uint64 `json:"words"`
}

// WorkerMark is one mark worker's activity within a parallel-marked
// collection.
type WorkerMark struct {
	// Worker is the worker index.
	Worker int `json:"worker"`
	// Marked is the number of objects whose mark-bit claim this worker won.
	Marked int `json:"marked"`
	// Steals is the number of work items this worker stole from others.
	Steals int `json:"steals"`
	// DurNs is the worker goroutine's wall-clock span in nanoseconds.
	DurNs int64 `json:"dur_ns"`
}

// Event is the structured record of one collection cycle.
type Event struct {
	// Seq is the tracer-assigned monotonic sequence number (distinct from
	// the collector's own count in generational mode, where minor and full
	// collectors number independently).
	Seq uint64 `json:"seq"`
	// Reason is the collection's trigger label.
	Reason string `json:"reason"`
	// StartUnixNs is the collection's wall-clock start, Unix nanoseconds.
	StartUnixNs int64 `json:"start_unix_ns"`
	// TotalNs is the full stop-the-world pause in nanoseconds.
	TotalNs int64 `json:"total_ns"`
	// Phases holds the timed phases in cycle order (ownership only when it
	// ran).
	Phases []PhaseSpan `json:"phases"`
	// RootsScanned, ObjectsMarked, ObjectsFreed, ObjectsLive and WordsFreed
	// summarize the trace and sweep.
	RootsScanned  int `json:"roots_scanned"`
	ObjectsMarked int `json:"objects_marked"`
	ObjectsFreed  int `json:"objects_freed"`
	ObjectsLive   int `json:"objects_live"`
	WordsFreed    int `json:"words_freed"`
	// Kinds is per-assertion-kind activity (nil in Base mode).
	Kinds []KindCount `json:"kinds,omitempty"`
	// Workers is the number of mark-phase workers used (1 = sequential
	// marker; 0 in events recorded before the field existed).
	Workers int `json:"workers,omitempty"`
	// Fallback, on collections configured for parallel marking that marked
	// sequentially anyway, names why ("keep-marks", "non-parallel-hooks" or
	// "decider" — see the collector's Fallback* constants). Empty otherwise.
	Fallback string `json:"fallback,omitempty"`
	// PerWorker is per-worker mark activity; nil unless the collection
	// marked in parallel.
	PerWorker []WorkerMark `json:"per_worker,omitempty"`
	// Trigger is the one-line trigger explanation (empty unless the runtime
	// has cost attribution on).
	Trigger string `json:"trigger,omitempty"`
	// OccupancyPct is the heap occupancy observed at trigger time;
	// AllocRateWps the allocation-rate EWMA (words/second) and TriggerThread
	// the dominant allocating thread of the inter-GC window. All zero
	// without cost attribution.
	OccupancyPct  float64 `json:"occupancy_pct,omitempty"`
	AllocRateWps  float64 `json:"alloc_rate_wps,omitempty"`
	TriggerThread string  `json:"trigger_thread,omitempty"`
	// Costs is per-assertion-kind cost attribution (nil unless attribution
	// is on and the collection ran assertion checks).
	Costs []AssertCost `json:"assert_costs,omitempty"`
	// Threads is per-thread cumulative allocation volume at event time (nil
	// without cost attribution).
	Threads []ThreadAlloc `json:"threads,omitempty"`
	// Request is the request tag active when the collection began (the
	// tracing layer sets Runtime.SetRequestTag around each traced request,
	// typically to the request's span ID). Empty when tracing is off or no
	// request was executing — the cost of the feature is then one string
	// copy of "".
	Request string `json:"request,omitempty"`
}

// PhaseNs returns the duration of the named phase in nanoseconds (0 if the
// phase did not run).
func (e *Event) PhaseNs(phase string) int64 {
	for _, p := range e.Phases {
		if p.Phase == phase {
			return p.DurNs
		}
	}
	return 0
}

// Start returns the event's wall-clock start time.
func (e *Event) Start() time.Time { return time.Unix(0, e.StartUnixNs) }

// PauseWindow returns the collection's stop-the-world window as Unix
// nanoseconds: [start, start+total). Request-latency attribution intersects
// these windows with request lifetimes.
func (e *Event) PauseWindow() (startNs, endNs int64) {
	return e.StartUnixNs, e.StartUnixNs + e.TotalNs
}

// DominantCost returns the assertion kind with the largest attributed
// slow-path time in this collection, with its share of the attributed total
// (0..1). Empty when the event carries no cost attribution or no kind
// recorded any slow-path time.
func (e *Event) DominantCost() (kind string, share float64) {
	var total, best int64
	for _, c := range e.Costs {
		total += c.Ns
		if c.Ns > best {
			best, kind = c.Ns, c.Kind
		}
	}
	if total <= 0 {
		return "", 0
	}
	return kind, float64(best) / float64(total)
}
