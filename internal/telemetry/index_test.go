package telemetry

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestIndexMatchesRoutes pins the satellite contract of the debug index:
// the set of paths the index advertises is exactly the set of routes the
// mux registers. Both derive from the same endpoints table, so this guards
// against a future hand-added route (or hand-edited index line) splitting
// them apart again.
func TestIndexMatchesRoutes(t *testing.T) {
	tr := New(Config{})
	h := tr.Handler()

	// Paths the index advertises: first column of each body line after the
	// header.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", indexPattern, nil))
	if rec.Code != 200 {
		t.Fatalf("index returned %d", rec.Code)
	}
	indexed := map[string]bool{}
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if !strings.HasPrefix(line, "/") {
			continue
		}
		indexed[strings.Fields(line)[0]] = true
	}

	// Routes the mux registers, from the same table Handler consumed, plus
	// the index itself.
	registered := map[string]bool{indexPattern: true}
	for _, ep := range tr.endpoints() {
		registered[ep.pattern] = true
	}

	for p := range registered {
		if !indexed[p] {
			t.Errorf("registered route %s missing from index", p)
		}
	}
	for p := range indexed {
		if !registered[p] {
			t.Errorf("index advertises %s but no such route is registered", p)
		}
	}

	// And every advertised path actually resolves on the mux: nothing in
	// the index may 404. (Uninstalled sources return 404 from their own
	// handler with an explanatory body — distinguish by body text.) The
	// request context is pre-canceled so streaming endpoints (the SSE live
	// feed) return instead of blocking the test.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for p := range indexed {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", p, nil).WithContext(ctx))
		if rec.Code == 404 && strings.Contains(rec.Body.String(), "page not found") {
			t.Errorf("index advertises %s but the mux does not route it", p)
		}
	}
}
