package telemetry

import (
	"io"
	"strconv"
	"sync"
	"time"

	"gcassert/internal/sse"
)

// Config configures a Tracer.
type Config struct {
	// RingSize is the number of recent GC events retained (default 1024).
	RingSize int
	// ViolationLog is the number of recent violation reports retained
	// (default 128).
	ViolationLog int
}

// Tracer is the runtime's telemetry hub: it owns the GC event ring, the
// metrics registry (with the pause histogram), and the violation log, and
// serves all of them over HTTP. One Tracer observes one runtime.
//
// Record and RecordTrigger are called from inside stop-the-world
// collections (single-threaded); every reader method is safe to call
// concurrently from other goroutines while the workload runs.
type Tracer struct {
	start time.Time
	ring  *Ring
	reg   *Registry

	pause       *Histogram
	rootsTotal  *Counter
	markedTotal *Counter
	freedTotal  *Counter
	wordsFreed  *Counter
	allocObjs   *Counter
	allocWords  *Counter
	liveObjects *Gauge
	violTotal   *Counter

	live sse.Hub

	vmu      sync.Mutex
	viols    []string
	violCap  int
	violSeen uint64

	// onRecord, when set, observes every event synchronously at the end of
	// Record — see OnRecord.
	onRecord func(*Event)

	hmu         sync.Mutex
	heapProfile func(io.Writer) error
	censusFn    func(w io.Writer, n int) error
	leaksFn     func(w io.Writer, window, top int) error
	flightFn    func(io.Writer) error
	fleetFn     func(w io.Writer, export bool) error
}

// New creates a Tracer.
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1024
	}
	if cfg.ViolationLog <= 0 {
		cfg.ViolationLog = 128
	}
	reg := NewRegistry()
	t := &Tracer{
		start:   time.Now(),
		ring:    NewRing(cfg.RingSize),
		reg:     reg,
		violCap: cfg.ViolationLog,

		pause: reg.Histogram("gcassert_gc_pause_seconds",
			"Stop-the-world GC pause durations.", DefaultPauseBuckets()),
		rootsTotal: reg.Counter("gcassert_gc_roots_scanned_total",
			"Root slots examined across all collections."),
		markedTotal: reg.Counter("gcassert_gc_objects_marked_total",
			"Objects marked across all collections."),
		freedTotal: reg.Counter("gcassert_gc_objects_freed_total",
			"Objects reclaimed across all sweeps."),
		wordsFreed: reg.Counter("gcassert_gc_words_freed_total",
			"Heap words reclaimed across all sweeps."),
		allocObjs: reg.Counter("gcassert_alloc_objects_total",
			"Objects allocated by the mutator."),
		allocWords: reg.Counter("gcassert_alloc_words_total",
			"Heap words allocated by the mutator."),
		liveObjects: reg.Gauge("gcassert_heap_live_objects",
			"Live objects after the most recent collection."),
		violTotal: reg.Counter("gcassert_violations_logged_total",
			"Assertion violations delivered to the telemetry log."),
	}
	t.live.DropMetric = reg.Counter("gcassert_live_dropped_frames_total",
		"Live-feed frames dropped because a subscriber could not keep up.")
	return t
}

// Start returns the tracer's creation time (the trace epoch).
func (t *Tracer) Start() time.Time { return t.start }

// Registry exposes the metrics registry (for extra user metrics and for
// rendering).
func (t *Tracer) Registry() *Registry { return t.reg }

// PauseHistogram exposes the GC pause histogram.
func (t *Tracer) PauseHistogram() *Histogram { return t.pause }

// Ring exposes the event ring.
func (t *Tracer) Ring() *Ring { return t.ring }

// RecordTrigger counts a GC trigger by reason; the runtime calls it when a
// collection starts.
func (t *Tracer) RecordTrigger(reason string) {
	t.reg.Counter("gcassert_gc_triggers_total",
		"Collections triggered, by reason.", Label{"reason", reason}).Inc()
}

// AddAllocations accumulates mutator allocation activity (the runtime
// feeds it the heap-stats delta since the previous collection, so the
// mutator's allocation fast path is untouched).
func (t *Tracer) AddAllocations(objects, words uint64) {
	t.allocObjs.Add(objects)
	t.allocWords.Add(words)
}

// Record ingests one completed collection: it assigns the event's
// tracer-global sequence number, pushes it into the ring, and updates
// every derived metric. The event must not be mutated afterwards.
func (t *Tracer) Record(ev *Event) {
	ev.Seq = t.ring.Total()
	t.ring.Push(ev)

	t.pause.Observe(time.Duration(ev.TotalNs))
	t.reg.Counter("gcassert_gc_collections_total",
		"Completed collections, by reason.", Label{"reason", ev.Reason}).Inc()
	for _, p := range ev.Phases {
		t.reg.Counter("gcassert_gc_phase_ns_total",
			"Cumulative per-phase GC time in nanoseconds.", Label{"phase", p.Phase}).Add(uint64(p.DurNs))
	}
	t.rootsTotal.Add(uint64(ev.RootsScanned))
	t.markedTotal.Add(uint64(ev.ObjectsMarked))
	t.freedTotal.Add(uint64(ev.ObjectsFreed))
	t.wordsFreed.Add(uint64(ev.WordsFreed))
	t.liveObjects.Set(int64(ev.ObjectsLive))
	for _, k := range ev.Kinds {
		if k.Checks != 0 {
			t.reg.Counter("gcassert_assert_checks_total",
				"Assertion checks performed, by kind.", Label{"kind", k.Kind}).Add(k.Checks)
		}
		if k.Violations != 0 {
			t.reg.Counter("gcassert_assert_violations_total",
				"Assertion violations detected, by kind.", Label{"kind", k.Kind}).Add(k.Violations)
		}
	}
	if ev.Fallback != "" {
		t.reg.Counter("gcassert_gc_mark_fallback_total",
			"Collections that fell back from parallel to sequential marking, by reason.",
			Label{"reason", ev.Fallback}).Inc()
	}
	if ev.Workers > 0 {
		t.reg.Gauge("gcassert_gc_mark_workers",
			"Mark-phase workers used by the most recent collection.").Set(int64(ev.Workers))
		var steals uint64
		for _, w := range ev.PerWorker {
			steals += uint64(w.Steals)
			t.reg.Counter("gcassert_gc_worker_marked_total",
				"Objects marked, by parallel mark worker.",
				Label{"worker", strconv.Itoa(w.Worker)}).Add(uint64(w.Marked))
		}
		if len(ev.PerWorker) > 0 {
			t.reg.Counter("gcassert_gc_mark_steals_total",
				"Work items stolen between mark workers across all parallel marks.").Add(steals)
		}
	}
	// Cost attribution and pressure, when the runtime stamps them on events.
	// Zero-valued Adds still register the series, so an attributing runtime
	// exposes every kind label from the first collection on.
	for _, c := range ev.Costs {
		t.reg.FloatCounter("gcassert_gc_assert_cost_seconds",
			"Attributed assertion slow-path time, by kind.",
			Label{"kind", c.Kind}).Add(float64(c.Ns) / 1e9)
		if c.Checks != 0 {
			t.reg.Counter("gcassert_gc_assert_cost_checks_total",
				"Attributed assertion checks, by kind.",
				Label{"kind", c.Kind}).Add(c.Checks)
		}
	}
	if ev.Trigger != "" {
		t.reg.Gauge("gcassert_heap_occupancy_pct",
			"Heap occupancy at the most recent collection trigger (percent, rounded).").
			Set(int64(ev.OccupancyPct + 0.5))
		t.reg.Gauge("gcassert_alloc_rate_words_per_second",
			"Allocation-rate EWMA at the most recent collection trigger (words/second, rounded).").
			Set(int64(ev.AllocRateWps + 0.5))
	}
	t.live.PublishJSON(ev)
	if t.onRecord != nil {
		t.onRecord(ev)
	}
}

// OnRecord installs a synchronous event listener invoked at the end of every
// Record call, after the ring and metrics are updated. Unlike the ring (which
// evicts) and the live feed (which drops frames for slow subscribers), the
// listener sees every collection exactly once — the lossless tap the latency
// lab's pause attribution depends on. It runs inside the stop-the-world
// pause on the collecting goroutine, so it must be brief, must not touch the
// managed heap, and must not call back into the runtime. The event is shared
// with the ring: treat it as read-only. Install the listener before the
// workload starts (Record and OnRecord must not race); nil uninstalls.
func (t *Tracer) OnRecord(fn func(*Event)) { t.onRecord = fn }

// Events returns a snapshot of the retained GC events, oldest first.
func (t *Tracer) Events() []Event { return t.ring.Snapshot() }

// WriteJSONL writes the retained events as JSON lines.
func (t *Tracer) WriteJSONL(w io.Writer) error { return WriteJSONL(w, t.Events()) }

// WriteGoTrace writes the retained events as gctrace-style lines.
func (t *Tracer) WriteGoTrace(w io.Writer) error { return WriteGoTrace(w, t.Events(), t.start) }

// WriteChromeTrace writes the retained events as Chrome trace_event JSON.
func (t *Tracer) WriteChromeTrace(w io.Writer) error { return WriteChromeTrace(w, t.Events()) }

// WriteMetrics renders the registry in Prometheus text format.
func (t *Tracer) WriteMetrics(w io.Writer) error { return t.reg.WritePrometheus(w) }

// LogViolation appends one formatted violation report to the bounded log
// (oldest entries are evicted) and counts it.
func (t *Tracer) LogViolation(report string) {
	t.violTotal.Inc()
	t.vmu.Lock()
	defer t.vmu.Unlock()
	t.violSeen++
	if len(t.viols) >= t.violCap {
		copy(t.viols, t.viols[1:])
		t.viols = t.viols[:len(t.viols)-1]
	}
	t.viols = append(t.viols, report)
}

// Violations returns the retained violation reports, oldest first, plus
// the total number ever logged (retained ≤ total when the log wrapped).
func (t *Tracer) Violations() (reports []string, total uint64) {
	t.vmu.Lock()
	defer t.vmu.Unlock()
	return append([]string(nil), t.viols...), t.violSeen
}

// SetHeapProfile installs the function backing /debug/gcassert/heap.
// The facade wires it to Runtime.WriteHeapProfile. The function walks the
// live heap, so it must only be invoked while the runtime is quiescent
// (between mutator steps) — see Handler.
func (t *Tracer) SetHeapProfile(f func(io.Writer) error) {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	t.heapProfile = f
}

func (t *Tracer) heapProfileFn() func(io.Writer) error {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	return t.heapProfile
}

// SetCensusSource installs the function backing /debug/gcassert/census; the
// facade wires it to the census ring's JSON export (last n snapshots, n <= 0
// for all). The census ring is mutex-guarded, so unlike the heap profile this
// source is safe to scrape while the workload runs.
func (t *Tracer) SetCensusSource(f func(w io.Writer, n int) error) {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	t.censusFn = f
}

// SetLeakSource installs the function backing /debug/gcassert/leaks: leak
// suspects ranked over the last `window` census snapshots, top `top`
// returned. Also safe to scrape concurrently.
func (t *Tracer) SetLeakSource(f func(w io.Writer, window, top int) error) {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	t.leaksFn = f
}

// SetFlightSource installs the function backing /debug/gcassert/fr: a
// flight-recorder bundle dump. The facade wires it to the recorder's
// WriteBundle; the bundle's heap profile walks the managed heap, so like
// the heap endpoint it must only be hit while the runtime is quiescent.
func (t *Tracer) SetFlightSource(f func(io.Writer) error) {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	t.flightFn = f
}

func (t *Tracer) flightSourceFn() func(io.Writer) error {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	return t.flightFn
}

func (t *Tracer) censusSourceFn() func(io.Writer, int) error {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	return t.censusFn
}

func (t *Tracer) leakSourceFn() func(io.Writer, int, int) error {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	return t.leaksFn
}

// SetFleetSource installs the function backing /debug/gcassert/fleet: the
// fleet exporter's status (identity, queue/send stats), and — when export
// is true — an on-demand census export to the collector first. The status
// is mutex-guarded on the exporter side, so the endpoint is safe to hit
// while the workload runs.
func (t *Tracer) SetFleetSource(f func(w io.Writer, export bool) error) {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	t.fleetFn = f
}

func (t *Tracer) fleetSourceFn() func(io.Writer, bool) error {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	return t.fleetFn
}
