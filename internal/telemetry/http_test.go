package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// get performs one request against the tracer's handler and returns the
// recorded response.
func get(t *testing.T, tr *Tracer, url string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, req)
	return rec
}

// TestHandlerStatusAndContentTypes pins every endpoint's status code and
// Content-Type header, with and without the optional sources installed.
func TestHandlerStatusAndContentTypes(t *testing.T) {
	bare := New(Config{})
	wired := New(Config{})
	wired.SetHeapProfile(func(w io.Writer) error {
		_, err := fmt.Fprintln(w, "heap profile")
		return err
	})
	wired.SetCensusSource(func(w io.Writer, n int) error {
		_, err := fmt.Fprintf(w, `{"snapshots":[],"last":%d}`, n)
		return err
	})
	wired.SetLeakSource(func(w io.Writer, window, top int) error {
		_, err := fmt.Fprintf(w, `{"suspects":[],"window":%d,"top":%d}`, window, top)
		return err
	})
	wired.SetFlightSource(func(w io.Writer) error {
		_, err := fmt.Fprintln(w, `{"schema_version":1}`)
		return err
	})

	cases := []struct {
		name       string
		tracer     *Tracer
		url        string
		wantStatus int
		wantCT     string
		wantInBody string
	}{
		{"metrics", bare, "/metrics", 200, "text/plain; version=0.0.4; charset=utf-8", "gcassert_gc_pause_seconds"},
		{"trace-default", bare, "/debug/gcassert/trace", 200, "application/x-ndjson", ""},
		{"trace-jsonl", bare, "/debug/gcassert/trace?format=jsonl", 200, "application/x-ndjson", ""},
		{"trace-gctrace", bare, "/debug/gcassert/trace?format=gctrace", 200, "text/plain; charset=utf-8", ""},
		{"trace-chrome", bare, "/debug/gcassert/trace?format=chrome", 200, "application/json", "["},
		{"trace-bad-format", bare, "/debug/gcassert/trace?format=nope", 400, "text/plain; charset=utf-8", "unknown format"},
		{"violations", bare, "/debug/gcassert/violations", 200, "text/plain; charset=utf-8", "violations logged"},
		{"heap-no-source", bare, "/debug/gcassert/heap", 404, "text/plain; charset=utf-8", "no heap profile source"},
		{"heap-wired", wired, "/debug/gcassert/heap", 200, "text/plain; charset=utf-8", "heap profile"},
		{"census-no-source", bare, "/debug/gcassert/census", 404, "text/plain; charset=utf-8", "no census source"},
		{"census-wired", wired, "/debug/gcassert/census", 200, "application/json", `"last":0`},
		{"census-last", wired, "/debug/gcassert/census?last=3", 200, "application/json", `"last":3`},
		{"census-bad-last", wired, "/debug/gcassert/census?last=-1", 400, "text/plain; charset=utf-8", "bad last"},
		{"leaks-no-source", bare, "/debug/gcassert/leaks", 404, "text/plain; charset=utf-8", "no leak source"},
		{"leaks-wired", wired, "/debug/gcassert/leaks", 200, "application/json", `"window":0,"top":10`},
		{"leaks-params", wired, "/debug/gcassert/leaks?window=8&top=3", 200, "application/json", `"window":8,"top":3`},
		{"leaks-bad-window", wired, "/debug/gcassert/leaks?window=x", 400, "text/plain; charset=utf-8", "bad window"},
		{"leaks-bad-top", wired, "/debug/gcassert/leaks?top=-2", 400, "text/plain; charset=utf-8", "bad top"},
		{"fr-no-source", bare, "/debug/gcassert/fr", 404, "text/plain; charset=utf-8", "no flight recorder"},
		{"fr-wired", wired, "/debug/gcassert/fr", 200, "application/json", `"schema_version":1`},
		{"index", bare, "/debug/gcassert/", 200, "text/plain; charset=utf-8", "/debug/gcassert/trace"},
		{"index-unknown-path", bare, "/debug/gcassert/nope", 404, "text/plain; charset=utf-8", "404"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := get(t, tc.tracer, tc.url)
			if rec.Code != tc.wantStatus {
				t.Errorf("status = %d, want %d (body: %s)", rec.Code, tc.wantStatus, rec.Body.String())
			}
			if ct := rec.Header().Get("Content-Type"); ct != tc.wantCT {
				t.Errorf("Content-Type = %q, want %q", ct, tc.wantCT)
			}
			if tc.wantInBody != "" && !strings.Contains(rec.Body.String(), tc.wantInBody) {
				t.Errorf("body does not contain %q:\n%s", tc.wantInBody, rec.Body.String())
			}
		})
	}
}

// TestHandlerSourcesReceiveParams verifies the census/leaks query parameters
// reach the installed sources (not just that parsing succeeds).
func TestHandlerSourcesReceiveParams(t *testing.T) {
	tr := New(Config{})
	var gotN, gotWindow, gotTop int
	tr.SetCensusSource(func(w io.Writer, n int) error {
		gotN = n
		_, err := io.WriteString(w, "{}")
		return err
	})
	tr.SetLeakSource(func(w io.Writer, window, top int) error {
		gotWindow, gotTop = window, top
		_, err := io.WriteString(w, "{}")
		return err
	})
	get(t, tr, "/debug/gcassert/census?last=7")
	if gotN != 7 {
		t.Errorf("census source got last=%d, want 7", gotN)
	}
	get(t, tr, "/debug/gcassert/leaks?window=5&top=2")
	if gotWindow != 5 || gotTop != 2 {
		t.Errorf("leak source got window=%d top=%d, want 5 and 2", gotWindow, gotTop)
	}
}

// TestIndexMarksUnavailableEndpoints: the index page must list every
// endpoint and flag the ones whose backing source is missing — and drop the
// flags once the sources are installed.
func TestIndexMarksUnavailableEndpoints(t *testing.T) {
	tr := New(Config{})
	body := get(t, tr, "/debug/gcassert/").Body.String()
	for _, ep := range []string{"/metrics", "trace", "violations", "heap", "census", "leaks", "fr"} {
		if !strings.Contains(body, ep) {
			t.Errorf("index does not mention %q:\n%s", ep, body)
		}
	}
	for _, enable := range []string{"Introspection", "FlightRecorder"} {
		if !strings.Contains(body, "[unavailable: enable "+enable+"]") {
			t.Errorf("index does not flag the missing %s source:\n%s", enable, body)
		}
	}

	tr.SetHeapProfile(func(w io.Writer) error { return nil })
	tr.SetCensusSource(func(w io.Writer, n int) error { return nil })
	tr.SetLeakSource(func(w io.Writer, window, top int) error { return nil })
	tr.SetFlightSource(func(w io.Writer) error { return nil })
	tr.SetFleetSource(func(w io.Writer, export bool) error { return nil })
	if body := get(t, tr, "/debug/gcassert/").Body.String(); strings.Contains(body, "[unavailable") {
		t.Errorf("fully wired tracer still lists unavailable endpoints:\n%s", body)
	}
}
