package telemetry

import (
	"sort"
	"sync/atomic"
)

// Ring is a fixed-size lock-free ring buffer of GC events. It assumes a
// single writer (the stop-the-world collector — collections never overlap)
// and any number of concurrent readers. Slots hold atomic pointers to
// immutable Events: a reader either sees a complete event or the one that
// replaced it, never a torn record, and a snapshot never blocks the
// collector.
type Ring struct {
	slots []atomic.Pointer[Event]
	head  atomic.Uint64 // number of events ever pushed
}

// NewRing creates a ring holding the most recent n events (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{slots: make([]atomic.Pointer[Event], n)}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Total returns the number of events ever pushed (drops = Total - Len).
func (r *Ring) Total() uint64 { return r.head.Load() }

// Len returns the number of events currently retained.
func (r *Ring) Len() int {
	h := r.head.Load()
	if h < uint64(len(r.slots)) {
		return int(h)
	}
	return len(r.slots)
}

// Push appends an event, evicting the oldest when full. The event must not
// be mutated after Push. Single writer only.
func (r *Ring) Push(ev *Event) {
	h := r.head.Load()
	r.slots[h%uint64(len(r.slots))].Store(ev)
	r.head.Store(h + 1)
}

// Snapshot returns copies of the retained events, oldest first. Under a
// concurrent writer a slot may be read just after eviction, so the result
// is sorted by sequence number to stay monotonic; it may span slightly
// more than Cap() collections' worth of history but never tears an event.
func (r *Ring) Snapshot() []Event {
	h := r.head.Load()
	n := uint64(len(r.slots))
	start := uint64(0)
	if h > n {
		start = h - n
	}
	out := make([]Event, 0, h-start)
	for i := start; i < h; i++ {
		if p := r.slots[i%n].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
