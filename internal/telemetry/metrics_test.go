package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestPrometheusGolden pins the exact text exposition output: families
// sorted by name, series by label set, histograms with cumulative buckets,
// +Inf, _sum in seconds and _count.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_requests_total", "Requests served.", Label{"kind", "a"}).Add(3)
	reg.Counter("test_requests_total", "Requests served.", Label{"kind", "b"}).Inc()
	reg.Gauge("test_live", "Live objects.").Set(7)
	h := reg.Histogram("test_pause_seconds", "Pause times.", []float64{0.001, 0.01})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	golden := `# HELP test_live Live objects.
# TYPE test_live gauge
test_live 7
# HELP test_pause_seconds Pause times.
# TYPE test_pause_seconds histogram
# test_pause_seconds summary: p50=5.5ms p95=43.999999ms p99=48.799999ms max=50ms
test_pause_seconds_bucket{le="0.001"} 1
test_pause_seconds_bucket{le="0.01"} 2
test_pause_seconds_bucket{le="+Inf"} 3
test_pause_seconds_sum 0.0555
test_pause_seconds_count 3
# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total{kind="a"} 3
test_requests_total{kind="b"} 1
`
	if got := b.String(); got != golden {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

func TestRegistryIdempotentLookup(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("x_total", "x", Label{"a", "1"})
	c2 := reg.Counter("x_total", "x", Label{"a", "1"})
	if c1 != c2 {
		t.Error("same name+labels returned distinct counters")
	}
	c3 := reg.Counter("x_total", "x", Label{"a", "2"})
	if c1 == c3 {
		t.Error("distinct labels returned the same counter")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("x_total", "x")
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "esc", Label{"p", `a"b\c` + "\n"}).Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{p="a\"b\\c\n"} 1`) {
		t.Errorf("escaping wrong:\n%s", b.String())
	}
}
