package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteJSONL writes one JSON object per event per line — the machine-
// readable trace format (ndjson).
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return nil
}

// GoTraceLine formats one event as a Go-gctrace-style one-liner:
//
//	gc 3 @1.234s 2%: 0.10+0.85+0.21 ms own+mark+sweep, 1234 marked, 56 freed, 890 live (alloc-failure)
//
// start anchors the @-offset; gcFrac is the cumulative fraction of wall
// time spent in GC so far (pass 0 to omit the computation's inputs — the
// column is always printed).
func GoTraceLine(e *Event, start time.Time, gcFrac float64) string {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	return fmt.Sprintf("gc %d @%.3fs %d%%: %.2f+%.2f+%.2f ms own+mark+sweep, %d marked, %d freed, %d live (%s)",
		e.Seq+1,
		time.Duration(e.StartUnixNs-start.UnixNano()).Seconds(),
		int(gcFrac*100+0.5),
		ms(e.PhaseNs("ownership")), ms(e.PhaseNs("mark")), ms(e.PhaseNs("sweep")),
		e.ObjectsMarked, e.ObjectsFreed, e.ObjectsLive, e.Reason)
}

// WriteGoTrace writes the events as gctrace-style lines, computing the
// cumulative GC fraction column from the trace itself, and closes with a
// `# pause summary:` percentile line over the retained pauses.
func WriteGoTrace(w io.Writer, events []Event, start time.Time) error {
	var gcNs int64
	for i := range events {
		e := &events[i]
		gcNs += e.TotalNs
		frac := 0.0
		if wall := e.StartUnixNs + e.TotalNs - start.UnixNano(); wall > 0 {
			frac = float64(gcNs) / float64(wall)
		}
		if _, err := fmt.Fprintln(w, GoTraceLine(e, start, frac)); err != nil {
			return err
		}
	}
	if len(events) > 0 {
		p50, p95, p99, max := pauseQuantiles(events)
		if _, err := fmt.Fprintf(w, "# pause summary: p50=%v p95=%v p99=%v max=%v (%d collections)\n",
			p50, p95, p99, max, len(events)); err != nil {
			return err
		}
	}
	return nil
}

// pauseQuantiles computes exact pause percentiles from the retained events
// (unlike the pause histogram, which is bucketed but covers evicted events
// too).
func pauseQuantiles(events []Event) (p50, p95, p99, max time.Duration) {
	ns := make([]int64, len(events))
	for i := range events {
		ns[i] = events[i].TotalNs
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(ns)-1))
		return time.Duration(ns[i])
	}
	return at(0.50), at(0.95), at(0.99), time.Duration(ns[len(ns)-1])
}

// chromeEvent is one entry of the Chrome trace_event format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope Perfetto and chrome://tracing
// both accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the events in Chrome trace_event JSON: one
// complete ("X") slice per collection with nested slices per phase, so a
// run opens directly in chrome://tracing or https://ui.perfetto.dev.
// Timestamps are microseconds since the first event.
func WriteChromeTrace(w io.Writer, events []Event) error {
	tr := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: 1, Tid: 1, Args: map[string]any{"name": "gcassert"}},
		{Name: "thread_name", Ph: "M", Pid: 1, Tid: 1, Args: map[string]any{"name": "GC (stop-the-world)"}},
	}}
	var epoch int64
	if len(events) > 0 {
		epoch = events[0].StartUnixNs
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	for i := range events {
		e := &events[i]
		args := map[string]any{
			"reason": e.Reason,
			"roots":  e.RootsScanned,
			"marked": e.ObjectsMarked,
			"freed":  e.ObjectsFreed,
			"live":   e.ObjectsLive,
		}
		for _, k := range e.Kinds {
			if k.Checks != 0 || k.Violations != 0 {
				args[k.Kind] = fmt.Sprintf("%d checks, %d violations", k.Checks, k.Violations)
			}
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: fmt.Sprintf("GC #%d (%s)", e.Seq, e.Reason),
			Cat:  "gc", Ph: "X",
			Ts: us(e.StartUnixNs - epoch), Dur: us(e.TotalNs),
			Pid: 1, Tid: 1, Args: args,
		})
		for _, p := range e.Phases {
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: p.Phase,
				Cat:  "gc-phase", Ph: "X",
				Ts: us(p.StartUnixNs - epoch), Dur: us(p.DurNs),
				Pid: 1, Tid: 1,
			})
			// Parallel-marked collections get one span per mark worker on
			// its own lane, anchored at the mark phase's start.
			if p.Phase == "mark" && len(e.PerWorker) > 0 {
				for _, w := range e.PerWorker {
					tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
						Name: fmt.Sprintf("mark worker %d", w.Worker),
						Cat:  "gc-mark-worker", Ph: "X",
						Ts: us(p.StartUnixNs - epoch), Dur: us(w.DurNs),
						Pid: 1, Tid: 2 + w.Worker,
						Args: map[string]any{"marked": w.Marked, "steals": w.Steals},
					})
				}
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&tr)
}
