package telemetry

import (
	"sync"
	"testing"
)

func TestRingWrapAndOrder(t *testing.T) {
	r := NewRing(4)
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatalf("fresh ring: Len=%d Total=%d", r.Len(), r.Total())
	}
	for i := 0; i < 10; i++ {
		r.Push(&Event{Seq: uint64(i)})
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d, want 10", r.Total())
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(snap))
	}
	for i, ev := range snap {
		if want := uint64(6 + i); ev.Seq != want {
			t.Errorf("snap[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	if r.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", r.Cap())
	}
	r.Push(&Event{Seq: 1})
	r.Push(&Event{Seq: 2})
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Seq != 2 {
		t.Fatalf("snapshot = %+v, want just seq 2", snap)
	}
}

// TestRingConcurrentDrain exercises the single-writer/concurrent-reader
// contract under the race detector: snapshots taken while the writer spins
// must stay monotonic and never tear.
func TestRingConcurrentDrain(t *testing.T) {
	r := NewRing(8)
	const writes = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			r.Push(&Event{Seq: uint64(i), TotalNs: int64(i)})
		}
	}()
	for r.Total() < writes {
		snap := r.Snapshot()
		for i := 1; i < len(snap); i++ {
			if snap[i].Seq <= snap[i-1].Seq {
				t.Fatalf("non-monotonic snapshot: %d after %d", snap[i].Seq, snap[i-1].Seq)
			}
		}
		for _, ev := range snap {
			if ev.TotalNs != int64(ev.Seq) {
				t.Fatalf("torn event: seq %d carries TotalNs %d", ev.Seq, ev.TotalNs)
			}
		}
	}
	wg.Wait()
}
