package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// The live GC-event feed (the /debug/gcassert/live SSE endpoint and
// in-process dashboards) fans out through a shared sse.Hub (the Tracer's
// live field). Publishing happens inside the stop-the-world pause, so the
// hub's contract is load-bearing here: the event is marshaled once (and
// only when someone is listening, via PublishJSON) and sends are
// non-blocking — a subscriber that cannot keep up loses frames rather than
// stalling the collector.

// serveLive implements /debug/gcassert/live: a Server-Sent Events stream
// pushing one `data: <event JSON>` frame per completed collection.
// ?replay=N resends the last N retained ring events before going live, so a
// dashboard attaching mid-run starts with history. The stream runs until
// the client disconnects; like every other endpoint it reads only the ring
// and the hub, so it is safe while the workload runs.
func (t *Tracer) serveLive(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported (response writer is not an http.Flusher)",
			http.StatusInternalServerError)
		return
	}
	replay, err := intParam(r, "replay", 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer SSE
	w.WriteHeader(http.StatusOK)

	// Subscribe before replaying so no collection can fall in the gap (a
	// cycle finishing during the replay may be sent twice; consumers key on
	// Seq).
	ch, cancel, _ := t.live.Subscribe(64) // the live hub never closes
	defer cancel()
	if replay > 0 {
		evs := t.Events()
		if len(evs) > replay {
			evs = evs[len(evs)-replay:]
		}
		for i := range evs {
			frame, err := json.Marshal(&evs[i])
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", frame); err != nil {
				return
			}
		}
	}
	flusher.Flush()

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case frame, open := <-ch:
			if !open {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", frame); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// LiveDropped returns the number of live frames dropped because a
// subscriber's channel was full. A rising value means some dashboard is not
// keeping up — the collector is unaffected.
func (t *Tracer) LiveDropped() uint64 { return t.live.Dropped() }

// SubscribeLive registers a live subscriber fed one JSON-encoded Event per
// completed collection (buf bounds the per-subscriber queue; slow readers
// lose frames, they are never allowed to block a collection). The returned
// cancel must be called when done; it closes the channel.
func (t *Tracer) SubscribeLive(buf int) (<-chan []byte, func()) {
	ch, cancel, _ := t.live.Subscribe(buf) // the live hub never closes
	return ch, cancel
}
