package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
)

// liveHub fans completed GC events out to live subscribers (the
// /debug/gcassert/live SSE endpoint and in-process dashboards). Publishing
// happens inside the stop-the-world pause, so it must never block: the
// event is marshaled once (and only when someone is listening) and sends
// are non-blocking — a subscriber that cannot keep up loses frames rather
// than stalling the collector.
type liveHub struct {
	mu   sync.Mutex
	subs map[chan []byte]struct{}

	// dropped counts frames lost to slow subscribers (full channels); it is
	// the visible cost of the never-block-the-pause rule. droppedMetric, when
	// set, mirrors it into the metrics registry.
	dropped       atomic.Uint64
	droppedMetric *Counter
}

// subscribe registers a new subscriber with the given channel buffer
// (minimum 1) and returns the frame channel plus a cancel function. Cancel
// is idempotent and closes the channel, so readers range over it.
func (h *liveHub) subscribe(buf int) (<-chan []byte, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan []byte, buf)
	h.mu.Lock()
	if h.subs == nil {
		h.subs = make(map[chan []byte]struct{})
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			delete(h.subs, ch)
			h.mu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}

// subscriberCount reports the number of live subscribers (tests).
func (h *liveHub) subscriberCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// publish sends one event to every subscriber. No-op without subscribers.
func (h *liveHub) publish(ev *Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.subs) == 0 {
		return
	}
	frame, err := json.Marshal(ev)
	if err != nil {
		return
	}
	for ch := range h.subs {
		select {
		case ch <- frame:
		default:
			// Slow subscriber: drop the frame, never block the pause.
			h.dropped.Add(1)
			if h.droppedMetric != nil {
				h.droppedMetric.Inc()
			}
		}
	}
}

// serveLive implements /debug/gcassert/live: a Server-Sent Events stream
// pushing one `data: <event JSON>` frame per completed collection.
// ?replay=N resends the last N retained ring events before going live, so a
// dashboard attaching mid-run starts with history. The stream runs until
// the client disconnects; like every other endpoint it reads only the ring
// and the hub, so it is safe while the workload runs.
func (t *Tracer) serveLive(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported (response writer is not an http.Flusher)",
			http.StatusInternalServerError)
		return
	}
	replay, err := intParam(r, "replay", 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer SSE
	w.WriteHeader(http.StatusOK)

	// Subscribe before replaying so no collection can fall in the gap (a
	// cycle finishing during the replay may be sent twice; consumers key on
	// Seq).
	ch, cancel := t.live.subscribe(64)
	defer cancel()
	if replay > 0 {
		evs := t.Events()
		if len(evs) > replay {
			evs = evs[len(evs)-replay:]
		}
		for i := range evs {
			frame, err := json.Marshal(&evs[i])
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", frame); err != nil {
				return
			}
		}
	}
	flusher.Flush()

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case frame, open := <-ch:
			if !open {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", frame); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// LiveDropped returns the number of live frames dropped because a
// subscriber's channel was full. A rising value means some dashboard is not
// keeping up — the collector is unaffected.
func (t *Tracer) LiveDropped() uint64 { return t.live.dropped.Load() }

// SubscribeLive registers a live subscriber fed one JSON-encoded Event per
// completed collection (buf bounds the per-subscriber queue; slow readers
// lose frames, they are never allowed to block a collection). The returned
// cancel must be called when done; it closes the channel.
func (t *Tracer) SubscribeLive(buf int) (<-chan []byte, func()) {
	return t.live.subscribe(buf)
}
