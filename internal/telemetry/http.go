package telemetry

import (
	"fmt"
	"net/http"
)

// Handler returns the tracer's HTTP surface:
//
//	/metrics                     Prometheus text exposition
//	/debug/gcassert/trace        GC event trace; ?format=jsonl (default),
//	                             gctrace, or chrome (open in Perfetto)
//	/debug/gcassert/violations   recent violation reports, oldest first
//	/debug/gcassert/heap         live-heap profile by type
//
// Every endpoint except /debug/gcassert/heap reads only atomics and
// mutex-guarded copies, so it is safe to scrape while the workload runs.
// The heap endpoint walks the managed heap and must only be hit while the
// runtime is quiescent (the runtime is single-goroutine; a scrape during a
// mutator step reads a heap mid-mutation).
func (t *Tracer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = t.WriteMetrics(w)
	})
	mux.HandleFunc("/debug/gcassert/trace", func(w http.ResponseWriter, r *http.Request) {
		switch f := r.URL.Query().Get("format"); f {
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			_ = t.WriteChromeTrace(w)
		case "gctrace":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = t.WriteGoTrace(w)
		case "", "jsonl":
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = t.WriteJSONL(w)
		default:
			http.Error(w, fmt.Sprintf("unknown format %q (want jsonl, gctrace or chrome)", f), http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/debug/gcassert/violations", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reports, total := t.Violations()
		fmt.Fprintf(w, "# %d violations logged, %d retained\n", total, len(reports))
		for _, rep := range reports {
			fmt.Fprintln(w, rep)
		}
	})
	mux.HandleFunc("/debug/gcassert/heap", func(w http.ResponseWriter, _ *http.Request) {
		f := t.heapProfileFn()
		if f == nil {
			http.Error(w, "no heap profile source installed", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := f(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
