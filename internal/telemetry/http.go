package telemetry

import (
	"fmt"
	"net/http"
	"strconv"
)

// Handler returns the tracer's HTTP surface:
//
//	/metrics                     Prometheus text exposition
//	/debug/gcassert/trace        GC event trace; ?format=jsonl (default),
//	                             gctrace, or chrome (open in Perfetto)
//	/debug/gcassert/violations   recent violation reports, oldest first
//	/debug/gcassert/heap         live-heap profile by type
//	/debug/gcassert/census       per-type census snapshots (JSON); ?last=N
//	                             bounds the returned snapshots
//	/debug/gcassert/leaks        leak suspects ranked over recent snapshots
//	                             (JSON); ?window=N and ?top=N tune the diff
//	/debug/gcassert/fr           flight-recorder forensic bundle (JSON with
//	                             an embedded pprof heap profile)
//	/debug/gcassert/             index of the endpoints above
//
// Every endpoint except /debug/gcassert/heap reads only atomics and
// mutex-guarded copies, so it is safe to scrape while the workload runs.
// The heap endpoint walks the managed heap and must only be hit while the
// runtime is quiescent (the runtime is single-goroutine; a scrape during a
// mutator step reads a heap mid-mutation). The census and leaks endpoints
// read the census snapshot ring, which is mutex-guarded, so they are safe
// concurrently too.
func (t *Tracer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = t.WriteMetrics(w)
	})
	mux.HandleFunc("/debug/gcassert/trace", func(w http.ResponseWriter, r *http.Request) {
		switch f := r.URL.Query().Get("format"); f {
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			_ = t.WriteChromeTrace(w)
		case "gctrace":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = t.WriteGoTrace(w)
		case "", "jsonl":
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = t.WriteJSONL(w)
		default:
			http.Error(w, fmt.Sprintf("unknown format %q (want jsonl, gctrace or chrome)", f), http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/debug/gcassert/violations", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reports, total := t.Violations()
		fmt.Fprintf(w, "# %d violations logged, %d retained\n", total, len(reports))
		for _, rep := range reports {
			fmt.Fprintln(w, rep)
		}
	})
	mux.HandleFunc("/debug/gcassert/heap", func(w http.ResponseWriter, _ *http.Request) {
		f := t.heapProfileFn()
		if f == nil {
			http.Error(w, "no heap profile source installed", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := f(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/gcassert/census", func(w http.ResponseWriter, r *http.Request) {
		f := t.censusSourceFn()
		if f == nil {
			http.Error(w, "no census source installed (enable Introspection)", http.StatusNotFound)
			return
		}
		n, err := intParam(r, "last", 0)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := f(w, n); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/gcassert/leaks", func(w http.ResponseWriter, r *http.Request) {
		f := t.leakSourceFn()
		if f == nil {
			http.Error(w, "no leak source installed (enable Introspection)", http.StatusNotFound)
			return
		}
		window, err := intParam(r, "window", 0)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		top, err := intParam(r, "top", 10)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := f(w, window, top); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/gcassert/fr", func(w http.ResponseWriter, _ *http.Request) {
		f := t.flightSourceFn()
		if f == nil {
			http.Error(w, "no flight recorder installed (enable FlightRecorder)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := f(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/gcassert/fleet", func(w http.ResponseWriter, r *http.Request) {
		f := t.fleetSourceFn()
		if f == nil {
			http.Error(w, "no fleet exporter installed (set FleetURL)", http.StatusNotFound)
			return
		}
		export := r.URL.Query().Get("export") == "now"
		if export && r.Method != http.MethodPost {
			http.Error(w, "POST to trigger an on-demand export", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := f(w, export); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/gcassert/live", func(w http.ResponseWriter, r *http.Request) {
		t.serveLive(w, r)
	})
	mux.HandleFunc("/debug/gcassert/", func(w http.ResponseWriter, r *http.Request) {
		// The pattern is a subtree match; anything but the index itself is an
		// unknown endpoint.
		if r.URL.Path != "/debug/gcassert/" {
			http.NotFound(w, r)
			return
		}
		t.writeIndex(w)
	})
	return mux
}

// writeIndex renders the endpoint index served at /debug/gcassert/.
// Endpoints whose backing source is not installed are listed as
// unavailable, with the option that enables them.
func (t *Tracer) writeIndex(w http.ResponseWriter) {
	avail := func(ok bool, enable string) string {
		if ok {
			return ""
		}
		return fmt.Sprintf("  [unavailable: enable %s]", enable)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "gcassert debug endpoints\n\n")
	fmt.Fprintf(w, "/metrics                     Prometheus text exposition\n")
	fmt.Fprintf(w, "/debug/gcassert/trace        GC event trace (?format=jsonl|gctrace|chrome)\n")
	fmt.Fprintf(w, "/debug/gcassert/violations   recent violation reports\n")
	fmt.Fprintf(w, "/debug/gcassert/heap         live-heap profile by type%s\n",
		avail(t.heapProfileFn() != nil, "a heap profile source"))
	fmt.Fprintf(w, "/debug/gcassert/census       per-type census snapshots (?last=N)%s\n",
		avail(t.censusSourceFn() != nil, "Introspection"))
	fmt.Fprintf(w, "/debug/gcassert/leaks        leak suspects (?window=N&top=N)%s\n",
		avail(t.leakSourceFn() != nil, "Introspection"))
	fmt.Fprintf(w, "/debug/gcassert/fr           flight-recorder bundle%s\n",
		avail(t.flightSourceFn() != nil, "FlightRecorder"))
	fmt.Fprintf(w, "/debug/gcassert/fleet        fleet exporter status (POST ?export=now to ship a census)%s\n",
		avail(t.fleetSourceFn() != nil, "a fleet exporter (FleetURL)"))
	fmt.Fprintf(w, "/debug/gcassert/live         live GC event stream (SSE; ?replay=N resends recent events)\n")
}

// intParam parses an optional non-negative integer query parameter.
func intParam(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s=%q (want a non-negative integer)", name, s)
	}
	return n, nil
}
