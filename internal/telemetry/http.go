package telemetry

import (
	"fmt"
	"net/http"
	"strconv"
)

// endpoint describes one entry of the tracer's HTTP surface: the mux
// pattern it is registered under, its handler, a one-line description for
// the index, and — for endpoints that need an installed backing source — a
// probe plus the option that installs it. Handler and writeIndex both
// iterate this table, so the index can never list a route that is not
// registered, nor miss one that is (TestIndexMatchesRoutes pins this).
type endpoint struct {
	pattern   string
	desc      string
	handler   http.HandlerFunc
	installed func() bool // nil = always available
	enable    string      // what turns an uninstalled endpoint on
}

// endpoints returns the tracer's route table. The index route itself
// (/debug/gcassert/) is registered separately in Handler — it renders this
// table rather than appearing in it.
func (t *Tracer) endpoints() []endpoint {
	return []endpoint{
		{
			pattern: "/metrics",
			desc:    "Prometheus text exposition",
			handler: func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
				_ = t.WriteMetrics(w)
			},
		},
		{
			pattern: "/debug/gcassert/trace",
			desc:    "GC event trace (?format=jsonl|gctrace|chrome)",
			handler: func(w http.ResponseWriter, r *http.Request) {
				switch f := r.URL.Query().Get("format"); f {
				case "chrome":
					w.Header().Set("Content-Type", "application/json")
					_ = t.WriteChromeTrace(w)
				case "gctrace":
					w.Header().Set("Content-Type", "text/plain; charset=utf-8")
					_ = t.WriteGoTrace(w)
				case "", "jsonl":
					w.Header().Set("Content-Type", "application/x-ndjson")
					_ = t.WriteJSONL(w)
				default:
					http.Error(w, fmt.Sprintf("unknown format %q (want jsonl, gctrace or chrome)", f), http.StatusBadRequest)
				}
			},
		},
		{
			pattern: "/debug/gcassert/violations",
			desc:    "recent violation reports",
			handler: func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				reports, total := t.Violations()
				fmt.Fprintf(w, "# %d violations logged, %d retained\n", total, len(reports))
				for _, rep := range reports {
					fmt.Fprintln(w, rep)
				}
			},
		},
		{
			pattern:   "/debug/gcassert/heap",
			desc:      "live-heap profile by type",
			installed: func() bool { return t.heapProfileFn() != nil },
			enable:    "a heap profile source",
			handler: func(w http.ResponseWriter, _ *http.Request) {
				f := t.heapProfileFn()
				if f == nil {
					http.Error(w, "no heap profile source installed", http.StatusNotFound)
					return
				}
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				if err := f(w); err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
				}
			},
		},
		{
			pattern:   "/debug/gcassert/census",
			desc:      "per-type census snapshots (?last=N)",
			installed: func() bool { return t.censusSourceFn() != nil },
			enable:    "Introspection",
			handler: func(w http.ResponseWriter, r *http.Request) {
				f := t.censusSourceFn()
				if f == nil {
					http.Error(w, "no census source installed (enable Introspection)", http.StatusNotFound)
					return
				}
				n, err := intParam(r, "last", 0)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				if err := f(w, n); err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
				}
			},
		},
		{
			pattern:   "/debug/gcassert/leaks",
			desc:      "leak suspects (?window=N&top=N)",
			installed: func() bool { return t.leakSourceFn() != nil },
			enable:    "Introspection",
			handler: func(w http.ResponseWriter, r *http.Request) {
				f := t.leakSourceFn()
				if f == nil {
					http.Error(w, "no leak source installed (enable Introspection)", http.StatusNotFound)
					return
				}
				window, err := intParam(r, "window", 0)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				top, err := intParam(r, "top", 10)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				if err := f(w, window, top); err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
				}
			},
		},
		{
			pattern:   "/debug/gcassert/fr",
			desc:      "flight-recorder bundle",
			installed: func() bool { return t.flightSourceFn() != nil },
			enable:    "FlightRecorder",
			handler: func(w http.ResponseWriter, _ *http.Request) {
				f := t.flightSourceFn()
				if f == nil {
					http.Error(w, "no flight recorder installed (enable FlightRecorder)", http.StatusNotFound)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				if err := f(w); err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
				}
			},
		},
		{
			pattern:   "/debug/gcassert/fleet",
			desc:      "fleet exporter status (POST ?export=now to ship a census)",
			installed: func() bool { return t.fleetSourceFn() != nil },
			enable:    "a fleet exporter (FleetURL)",
			handler: func(w http.ResponseWriter, r *http.Request) {
				f := t.fleetSourceFn()
				if f == nil {
					http.Error(w, "no fleet exporter installed (set FleetURL)", http.StatusNotFound)
					return
				}
				export := r.URL.Query().Get("export") == "now"
				if export && r.Method != http.MethodPost {
					http.Error(w, "POST to trigger an on-demand export", http.StatusMethodNotAllowed)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				if err := f(w, export); err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
				}
			},
		},
		{
			pattern: "/debug/gcassert/live",
			desc:    "live GC event stream (SSE; ?replay=N resends recent events)",
			handler: func(w http.ResponseWriter, r *http.Request) {
				t.serveLive(w, r)
			},
		},
	}
}

// Handler returns the tracer's HTTP surface. Every route comes from the
// endpoints table, plus /debug/gcassert/ itself, which serves an index of
// that same table.
//
// Every endpoint except /debug/gcassert/heap reads only atomics and
// mutex-guarded copies, so it is safe to scrape while the workload runs.
// The heap endpoint walks the managed heap and must only be hit while the
// runtime is quiescent (the runtime is single-goroutine; a scrape during a
// mutator step reads a heap mid-mutation). The census and leaks endpoints
// read the census snapshot ring, which is mutex-guarded, so they are safe
// concurrently too.
func (t *Tracer) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, ep := range t.endpoints() {
		mux.HandleFunc(ep.pattern, ep.handler)
	}
	mux.HandleFunc(indexPattern, func(w http.ResponseWriter, r *http.Request) {
		// The pattern is a subtree match; anything but the index itself is an
		// unknown endpoint.
		if r.URL.Path != indexPattern {
			http.NotFound(w, r)
			return
		}
		t.writeIndex(w)
	})
	return mux
}

// indexPattern is where the endpoint index itself is served.
const indexPattern = "/debug/gcassert/"

// writeIndex renders the endpoint index served at /debug/gcassert/ from the
// live route table. Endpoints whose backing source is not installed are
// listed as unavailable, with the option that enables them.
func (t *Tracer) writeIndex(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "gcassert debug endpoints\n\n")
	for _, ep := range t.endpoints() {
		suffix := ""
		if ep.installed != nil && !ep.installed() {
			suffix = fmt.Sprintf("  [unavailable: enable %s]", ep.enable)
		}
		fmt.Fprintf(w, "%-28s %s%s\n", ep.pattern, ep.desc, suffix)
	}
	fmt.Fprintf(w, "%-28s %s\n", indexPattern, "this index")
}

// intParam parses an optional non-negative integer query parameter.
func intParam(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s=%q (want a non-negative integer)", name, s)
	}
	return n, nil
}
