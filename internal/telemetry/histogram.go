package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultPauseBuckets returns the log-spaced bucket upper bounds (in
// seconds) used for GC pause histograms: 1µs doubling up to ~34s.
func DefaultPauseBuckets() []float64 {
	out := make([]float64, 26)
	b := 1e-6
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}

// Histogram is a log-bucketed duration histogram with atomic observation
// and lock-free reads: Observe may race freely with quantile queries and
// Prometheus rendering.
type Histogram struct {
	bounds []float64       // ascending upper bounds, in seconds
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count  atomic.Uint64
	sumNs  atomic.Int64
	maxNs  atomic.Int64

	// Exemplars (OpenMetrics): at most one retained per bucket, newest
	// wins. The observe hot path never touches them — only SetExemplar
	// (called for tail-sampled kept traces, which are rare by design) and
	// the /metrics render take the mutex.
	exMu sync.Mutex
	ex   map[int]Exemplar
}

// Exemplar links one observation in a histogram bucket to the trace that
// produced it, rendered in OpenMetrics exemplar syntax on the bucket line.
type Exemplar struct {
	// Value is the observed value in the histogram's native unit (seconds).
	Value float64
	// TraceID is the 32-hex-digit trace identifier.
	TraceID string
	// UnixNs is the observation's wall-clock time.
	UnixNs int64
}

// NewHistogram creates a histogram over the given ascending upper bounds
// (in seconds). Values above the last bound land in an overflow bucket.
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	for {
		old := h.maxNs.Load()
		if int64(d) <= old || h.maxNs.CompareAndSwap(old, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket containing the target rank, the standard estimator for
// log-bucketed histograms. Returns 0 with no observations; the estimate is
// clamped to Max so q=1 is exact.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.Max().Seconds()
			if i < len(h.bounds) && h.bounds[i] < hi {
				hi = h.bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			est := time.Duration((lo + (hi-lo)*frac) * float64(time.Second))
			if m := h.Max(); est > m {
				est = m
			}
			return est
		}
		cum += float64(c)
	}
	return h.Max()
}

// Summary returns the p50/p95/p99 quantile estimates, the operator's
// at-a-glance pause profile. The /metrics render emits it as a comment line
// next to the raw buckets, and cmd/gctrace prints it after the event log.
func (h *Histogram) Summary() (p50, p95, p99 time.Duration) {
	return h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
}

// SetExemplar attaches a trace exemplar to the bucket the value falls in,
// replacing that bucket's previous exemplar. Call it only for observations
// whose trace was actually retained, so every exemplar a scraper follows
// resolves to a stored trace.
func (h *Histogram) SetExemplar(value float64, traceID string, unixNs int64) {
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, value)
	h.exMu.Lock()
	if h.ex == nil {
		h.ex = make(map[int]Exemplar)
	}
	h.ex[i] = Exemplar{Value: value, TraceID: traceID, UnixNs: unixNs}
	h.exMu.Unlock()
}

// exemplars returns a copy of the per-bucket exemplars (nil when none).
func (h *Histogram) exemplars() map[int]Exemplar {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if len(h.ex) == 0 {
		return nil
	}
	out := make(map[int]Exemplar, len(h.ex))
	for k, v := range h.ex {
		out[k] = v
	}
	return out
}

// snapshot returns the per-bucket counts (for Prometheus rendering).
func (h *Histogram) snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}
