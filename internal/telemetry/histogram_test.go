package telemetry

import (
	"testing"
	"time"
)

func TestHistogramBucketAssignment(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // bucket 0 (≤1ms)
	h.Observe(time.Millisecond)       // boundary: still ≤1ms
	h.Observe(5 * time.Millisecond)   // bucket 1 (≤10ms)
	h.Observe(50 * time.Millisecond)  // bucket 2 (≤100ms)
	h.Observe(2 * time.Second)        // overflow

	want := []uint64{2, 1, 1, 1}
	got := h.snapshot()
	for i, w := range want {
		if got[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, got[i], w)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	wantSum := 500*time.Microsecond + time.Millisecond + 5*time.Millisecond + 50*time.Millisecond + 2*time.Second
	if h.Sum() != wantSum {
		t.Errorf("Sum = %v, want %v", h.Sum(), wantSum)
	}
	if h.Max() != 2*time.Second {
		t.Errorf("Max = %v, want 2s", h.Max())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(DefaultPauseBuckets())
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", q)
	}
	// 100 observations spread linearly from 1ms to 100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	// The bucketed estimate must land within the bucket containing the true
	// quantile: true p50 = 50ms → bucket (32.8ms, 65.5ms].
	checks := []struct {
		q        float64
		lo, hi   time.Duration
		trueName string
	}{
		{0.5, 32 * time.Millisecond, 66 * time.Millisecond, "p50≈50ms"},
		{0.9, 65 * time.Millisecond, 132 * time.Millisecond, "p90≈90ms"},
		{0.99, 65 * time.Millisecond, 100 * time.Millisecond, "p99≈99ms"},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.lo || got > c.hi {
			t.Errorf("Quantile(%v) = %v, want in [%v, %v] (%s)", c.q, got, c.lo, c.hi, c.trueName)
		}
	}
	if p100 := h.Quantile(1); p100 != 100*time.Millisecond {
		t.Errorf("Quantile(1) = %v, want exactly Max (100ms)", p100)
	}
	if p50, p99 := h.Quantile(0.5), h.Quantile(0.99); p50 > p99 {
		t.Errorf("p50 %v > p99 %v", p50, p99)
	}
	// Out-of-range q clamps instead of panicking.
	if got := h.Quantile(1.5); got != h.Quantile(1) {
		t.Errorf("Quantile(1.5) = %v, want clamp to Quantile(1)", got)
	}
	if got := h.Quantile(-1); got < 0 {
		t.Errorf("Quantile(-1) = %v, want >= 0", got)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram(DefaultPauseBuckets())
	h.Observe(3 * time.Millisecond)
	// Every quantile of a single observation is clamped to Max.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got > 3*time.Millisecond {
			t.Errorf("Quantile(%v) = %v, want <= 3ms", q, got)
		}
	}
	if h.Quantile(1) != 3*time.Millisecond {
		t.Errorf("Quantile(1) = %v, want 3ms", h.Quantile(1))
	}
}

func TestDefaultPauseBuckets(t *testing.T) {
	bs := DefaultPauseBuckets()
	if len(bs) != 26 {
		t.Fatalf("len = %d, want 26", len(bs))
	}
	if bs[0] != 1e-6 {
		t.Errorf("first bound = %g, want 1e-6", bs[0])
	}
	for i := 1; i < len(bs); i++ {
		if bs[i] != 2*bs[i-1] {
			t.Errorf("bucket %d = %g, want double of %g", i, bs[i], bs[i-1])
		}
	}
}
