package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// liveGet hits /debug/gcassert/live with an already-cancelled context, so
// the handler replays and returns instead of streaming forever.
func liveGet(t *testing.T, tr *Tracer, url string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	ctx, cancel := context.WithCancel(req.Context())
	cancel()
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, req.WithContext(ctx))
	return rec
}

// TestServeLiveContentTypeAndReplay pins the SSE surface: the content type,
// that the response is flushed, and that ?replay=N resends exactly the last
// N retained events as `data:` frames.
func TestServeLiveContentTypeAndReplay(t *testing.T) {
	tr := New(Config{})
	for i := 0; i < 5; i++ {
		tr.Record(&Event{Reason: "forced", TotalNs: int64(i+1) * 1000})
	}
	rec := liveGet(t, tr, "/debug/gcassert/live?replay=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	if !rec.Flushed {
		t.Fatal("response was never flushed; SSE clients would see nothing")
	}
	var seqs []uint64
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		seqs = append(seqs, ev.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Fatalf("replayed seqs %v, want [3 4] (the last two of five)", seqs)
	}
}

func TestServeLiveBadReplay(t *testing.T) {
	rec := liveGet(t, New(Config{}), "/debug/gcassert/live?replay=-1")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d for replay=-1, want 400", rec.Code)
	}
}

// TestSubscribeLiveDelivery checks the in-process subscription path used by
// `mjrun -top`: each recorded event arrives as one JSON frame.
func TestSubscribeLiveDelivery(t *testing.T) {
	tr := New(Config{})
	ch, cancel := tr.SubscribeLive(4)
	defer cancel()
	tr.Record(&Event{Reason: "alloc-failure", TotalNs: 42})
	select {
	case frame := <-ch:
		var ev Event
		if err := json.Unmarshal(frame, &ev); err != nil {
			t.Fatalf("bad frame: %v", err)
		}
		if ev.Reason != "alloc-failure" || ev.TotalNs != 42 {
			t.Fatalf("frame %+v, want the recorded event", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no frame delivered")
	}
	cancel()
	cancel() // idempotent
	if _, open := <-ch; open {
		t.Fatal("channel still open after cancel")
	}
}

// TestPublishNeverBlocks pins the stop-the-world safety property: a
// subscriber that stops reading loses frames instead of stalling Record.
func TestPublishNeverBlocks(t *testing.T) {
	tr := New(Config{})
	_, cancel := tr.SubscribeLive(1)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Record(&Event{Reason: "forced"})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Record blocked on a slow live subscriber")
	}
}

// TestLiveSlowSubscriberCountsDrops extends the never-block property with
// its observable half: every frame a stalled subscriber loses is counted on
// the tracer and on the metrics surface, and healthy subscribers are
// unaffected.
func TestLiveSlowSubscriberCountsDrops(t *testing.T) {
	tr := New(Config{})

	// A stalled subscriber with a 2-frame buffer that nobody reads.
	_, cancelStalled := tr.SubscribeLive(2)
	defer cancelStalled()

	// A healthy subscriber that consumes everything.
	healthy, cancelHealthy := tr.SubscribeLive(64)
	var got int
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range healthy {
			got++
		}
	}()

	const frames = 50
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < frames; i++ {
			tr.Record(&Event{Reason: "forced"})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Record blocked on a stalled subscriber")
	}

	cancelHealthy()
	<-drained
	if got != frames {
		t.Fatalf("healthy subscriber got %d frames, want %d", got, frames)
	}
	wantDropped := uint64(frames - 2) // the stalled buffer held the first 2
	if d := tr.LiveDropped(); d != wantDropped {
		t.Fatalf("LiveDropped() = %d, want %d", d, wantDropped)
	}
	var buf strings.Builder
	if err := tr.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("gcassert_live_dropped_frames_total %d", wantDropped)
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("metrics exposition missing %q:\n%s", want, buf.String())
	}
}

// TestLiveSSESlowClientDropsFrames exercises the drop path through the real
// /debug/gcassert/live endpoint: an SSE client that never reads its body
// lets the server-side channel fill; publishing keeps flowing (collections
// are simulated by Record) and the dropped counter rises.
func TestLiveSSESlowClientDropsFrames(t *testing.T) {
	tr := New(Config{})
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/gcassert/live")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for tr.live.SubscriberCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("SSE subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}
	// Publish far more than the handler's 64-frame buffer plus anything the
	// kernel transport windows absorb, without ever reading resp.Body.
	const frames = 5000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < frames; i++ {
			tr.Record(&Event{Reason: "forced"})
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Record blocked on a slow SSE client")
	}
	if tr.LiveDropped() == 0 {
		t.Fatal("no frames counted as dropped despite a stalled SSE client")
	}

	// What did get through is still a valid SSE stream.
	r := bufio.NewReader(resp.Body)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "data: ") {
		t.Fatalf("first SSE line = %q", line)
	}
}
