package telemetry

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// liveGet hits /debug/gcassert/live with an already-cancelled context, so
// the handler replays and returns instead of streaming forever.
func liveGet(t *testing.T, tr *Tracer, url string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	ctx, cancel := context.WithCancel(req.Context())
	cancel()
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, req.WithContext(ctx))
	return rec
}

// TestServeLiveContentTypeAndReplay pins the SSE surface: the content type,
// that the response is flushed, and that ?replay=N resends exactly the last
// N retained events as `data:` frames.
func TestServeLiveContentTypeAndReplay(t *testing.T) {
	tr := New(Config{})
	for i := 0; i < 5; i++ {
		tr.Record(&Event{Reason: "forced", TotalNs: int64(i+1) * 1000})
	}
	rec := liveGet(t, tr, "/debug/gcassert/live?replay=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	if !rec.Flushed {
		t.Fatal("response was never flushed; SSE clients would see nothing")
	}
	var seqs []uint64
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		seqs = append(seqs, ev.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Fatalf("replayed seqs %v, want [3 4] (the last two of five)", seqs)
	}
}

func TestServeLiveBadReplay(t *testing.T) {
	rec := liveGet(t, New(Config{}), "/debug/gcassert/live?replay=-1")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d for replay=-1, want 400", rec.Code)
	}
}

// TestSubscribeLiveDelivery checks the in-process subscription path used by
// `mjrun -top`: each recorded event arrives as one JSON frame.
func TestSubscribeLiveDelivery(t *testing.T) {
	tr := New(Config{})
	ch, cancel := tr.SubscribeLive(4)
	defer cancel()
	tr.Record(&Event{Reason: "alloc-failure", TotalNs: 42})
	select {
	case frame := <-ch:
		var ev Event
		if err := json.Unmarshal(frame, &ev); err != nil {
			t.Fatalf("bad frame: %v", err)
		}
		if ev.Reason != "alloc-failure" || ev.TotalNs != 42 {
			t.Fatalf("frame %+v, want the recorded event", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no frame delivered")
	}
	cancel()
	cancel() // idempotent
	if _, open := <-ch; open {
		t.Fatal("channel still open after cancel")
	}
}

// TestPublishNeverBlocks pins the stop-the-world safety property: a
// subscriber that stops reading loses frames instead of stalling Record.
func TestPublishNeverBlocks(t *testing.T) {
	tr := New(Config{})
	_, cancel := tr.SubscribeLive(1)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Record(&Event{Reason: "forced"})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Record blocked on a slow live subscriber")
	}
}
