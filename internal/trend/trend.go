// Package trend is the Cork-style growth scorer (Jump & McKinley, POPL
// 2007) shared by per-process leak ranking (internal/heapdump) and fleet
// cross-instance diffing (internal/fleet): given a series of live-volume
// samples at uniform spacing, it fits a least-squares slope and measures how
// consistently the series grew, and scores the combination. A type that
// grows in nearly every window with a large positive slope is a leak
// suspect; a type that merely spiked once is not.
package trend

// Fit summarizes one sampled series.
type Fit struct {
	// Slope is the least-squares growth rate in units per sample.
	Slope float64
	// Growth is the fraction of adjacent sample pairs in which the series
	// grew (1.0 = grew every single step). Zero when fewer than two samples.
	Growth float64
	// Score ranks suspects: slope weighted by growth consistency. Series
	// that shrink or oscillate score near zero or negative.
	Score float64
}

// Slope returns the least-squares slope of ys against sample index (units
// per sample). Fewer than two samples fit no line and return 0.
func Slope(ys []float64) float64 {
	n := float64(len(ys))
	if len(ys) < 2 {
		return 0
	}
	var sumX, sumY, sumXY, sumXX float64
	for i, y := range ys {
		x := float64(i)
		sumX += x
		sumY += y
		sumXY += x * y
		sumXX += x * x
	}
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return 0
	}
	return (n*sumXY - sumX*sumY) / den
}

// Score fits ys: least-squares slope, growth consistency over adjacent
// pairs, and their product as the ranking score.
func Score(ys []float64) Fit {
	f := Fit{Slope: Slope(ys)}
	if len(ys) < 2 {
		return f
	}
	grew, pairs := 0, 0
	for i := 1; i < len(ys); i++ {
		pairs++
		if ys[i] > ys[i-1] {
			grew++
		}
	}
	f.Growth = float64(grew) / float64(pairs)
	f.Score = f.Slope * f.Growth
	return f
}
