package trend

import (
	"math"
	"testing"
)

func TestSlopeLinear(t *testing.T) {
	// y = 3x + 1 fits exactly.
	ys := []float64{1, 4, 7, 10, 13}
	if s := Slope(ys); math.Abs(s-3) > 1e-12 {
		t.Fatalf("Slope = %v, want 3", s)
	}
}

func TestSlopeDegenerate(t *testing.T) {
	if s := Slope(nil); s != 0 {
		t.Fatalf("Slope(nil) = %v, want 0", s)
	}
	if s := Slope([]float64{42}); s != 0 {
		t.Fatalf("Slope(single) = %v, want 0", s)
	}
}

func TestScoreMonotonicGrowth(t *testing.T) {
	f := Score([]float64{10, 20, 30, 40})
	if f.Growth != 1 {
		t.Fatalf("Growth = %v, want 1", f.Growth)
	}
	if math.Abs(f.Slope-10) > 1e-12 || math.Abs(f.Score-10) > 1e-12 {
		t.Fatalf("Slope/Score = %v/%v, want 10/10", f.Slope, f.Score)
	}
}

func TestScoreOscillation(t *testing.T) {
	// Perfect oscillation: zero slope, half the pairs grow, score ~0.
	f := Score([]float64{10, 20, 10, 20, 10})
	if f.Growth != 0.5 {
		t.Fatalf("Growth = %v, want 0.5", f.Growth)
	}
	if math.Abs(f.Score) > 1 {
		t.Fatalf("oscillating Score = %v, want near 0", f.Score)
	}
}

func TestScoreShrinkage(t *testing.T) {
	f := Score([]float64{40, 30, 20, 10})
	if f.Score > 0 {
		t.Fatalf("shrinking Score = %v, want <= 0", f.Score)
	}
	if f.Slope >= 0 {
		t.Fatalf("shrinking Slope = %v, want negative", f.Slope)
	}
	if f.Growth != 0 {
		t.Fatalf("Growth = %v, want 0", f.Growth)
	}
}

func TestScoreSpikeIsNotALeak(t *testing.T) {
	// One spike that settles back must score well below steady growth of
	// the same magnitude — the Cork intuition the ranking rests on.
	spike := Score([]float64{10, 10, 100, 10, 10, 10})
	steady := Score([]float64{10, 28, 46, 64, 82, 100})
	if spike.Score >= steady.Score {
		t.Fatalf("spike scored %v >= steady %v", spike.Score, steady.Score)
	}
}
