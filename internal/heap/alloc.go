package heap

import "fmt"

// Allocate allocates an object of type t. For array kinds, arrayLen gives the
// element count; for KindObject it must be 0. It returns the new object's
// address, or ok=false when the heap is exhausted (the runtime then triggers
// a collection and retries).
func (s *Space) Allocate(t TypeID, arrayLen int) (Addr, bool) {
	ti := s.reg.Info(t)
	if ti.Kind == KindObject && arrayLen != 0 {
		panic(fmt.Sprintf("heap: arrayLen %d for non-array type %s", arrayLen, ti.Name))
	}
	if arrayLen < 0 {
		panic(fmt.Sprintf("heap: negative array length %d", arrayLen))
	}
	size := ti.SizeWords(arrayLen)
	if size > maxSmallWords {
		return s.allocLarge(t, arrayLen, size)
	}
	class := classFor(size)
	for {
		pl := s.partial[class]
		for len(pl) > 0 {
			bi := pl[len(pl)-1]
			b := &s.blocks[bi]
			if b.freeHead != Nil {
				a := b.freeHead
				b.freeHead = Addr(s.words[a.word()])
				b.liveCells++
				bitSet(b.allocBits, s.cellIndex(b, a))
				s.initObject(a, t, arrayLen, classSizes[class])
				return a, true
			}
			pl = pl[:len(pl)-1]
			s.partial[class] = pl
		}
		if !s.carveBlock(class) {
			return Nil, false
		}
	}
}

// allocLarge allocates an object spanning one or more dedicated blocks.
func (s *Space) allocLarge(t TypeID, arrayLen, size int) (Addr, bool) {
	nblk := (size + BlockWords - 1) / BlockWords
	first, ok := s.findRun(nblk)
	if !ok {
		return Nil, false
	}
	b := &s.blocks[first]
	b.class = blkLargeHead
	b.spanLen = int32(nblk)
	b.liveCells = 1
	for i := 1; i < nblk; i++ {
		s.blocks[first+uint32(i)].class = blkLargeCont
	}
	a := blockStart(first)
	// Account the whole span as the object's storage, matching what the
	// sweep returns to the free pool when the object dies.
	s.initObject(a, t, arrayLen, nblk*BlockWords)
	return a, true
}

// initObject zeroes the cell and writes a fresh header.
func (s *Space) initObject(a Addr, t TypeID, arrayLen, cellWords int) {
	w := a.word()
	for i := 0; i < cellWords; i++ {
		s.words[w+uint32(i)] = 0
	}
	s.words[w] = makeHeader(t, arrayLen)
	s.stats.ObjectsAllocated++
	s.stats.WordsAllocated += uint64(cellWords)
	s.stats.LiveObjects++
	s.stats.LiveWords += uint64(cellWords)
}

// FreeWords reports how many words are currently free (free blocks plus free
// cells in partial blocks). It is an O(blocks) diagnostic.
func (s *Space) FreeWords() int {
	free := len(s.freeBlocks) * BlockWords
	for class := range s.partial {
		cellWords := classSizes[class]
		for _, bi := range s.partial[class] {
			b := &s.blocks[bi]
			ncells := BlockWords / cellWords
			free += (ncells - int(b.liveCells)) * cellWords
		}
	}
	return free
}
