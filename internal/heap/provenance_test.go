package heap

import "testing"

// provSpace builds a small space with provenance at the given sampling rate
// and one two-field object type.
func provSpace(t *testing.T, sample int) (*Space, TypeID) {
	t.Helper()
	reg := NewRegistry()
	typ := reg.Define("Node", Field{Name: "next", Ref: true}, Field{Name: "v"})
	s := NewSpace(reg, 1<<20)
	s.EnableProvenance(sample)
	return s, typ
}

func TestProvenanceRegisterDedupes(t *testing.T) {
	s, _ := provSpace(t, 1)
	p := s.Provenance()
	a := p.Register("main.go:10 new Node")
	b := p.Register("main.go:20 new Node")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("distinct descs must get distinct non-zero IDs: %d, %d", a, b)
	}
	if again := p.Register("main.go:10 new Node"); again != a {
		t.Fatalf("re-registering a desc returned %d, want %d", again, a)
	}
	if p.Register("") != 0 {
		t.Fatal("empty desc must map to the unknown site")
	}
	if got := p.Name(a); got != "main.go:10 new Node" {
		t.Fatalf("Name(%d) = %q", a, got)
	}
	if p.NumSites() != 2 {
		t.Fatalf("NumSites = %d, want 2", p.NumSites())
	}
}

func TestProvenanceExhaustiveRecordAndSweep(t *testing.T) {
	s, typ := provSpace(t, 1)
	p := s.Provenance()
	site := p.Register("alloc here")

	a1, _ := s.Allocate(typ, 0)
	s.RecordSite(a1, site)
	a2, _ := s.Allocate(typ, 0)
	s.RecordSite(a2, site)
	if s.SiteOf(a1) != site || s.SiteDesc(a2) != "alloc here" {
		t.Fatalf("site lookup failed: %d / %q", s.SiteOf(a1), s.SiteDesc(a2))
	}

	// Sweep with only a1 marked: a2's entry must be forgotten so a recycled
	// cell cannot inherit it.
	s.SetMark(a1)
	s.Sweep(false)
	if s.SiteOf(a1) != site {
		t.Fatal("survivor lost its site across sweep")
	}
	if s.SiteOf(a2) != 0 {
		t.Fatal("freed object's site entry must be forgotten")
	}
	st := p.Stats()
	if st.Recorded != 2 || st.TableEntries != 1 {
		t.Fatalf("stats = %+v, want Recorded=2 TableEntries=1", st)
	}

	// The freed cell is recycled; the new tenant starts with no site.
	a3, _ := s.Allocate(typ, 0)
	if s.SiteOf(a3) != 0 {
		t.Fatalf("recycled cell inherited site %d", s.SiteOf(a3))
	}
}

func TestProvenanceSampling(t *testing.T) {
	s, typ := provSpace(t, 4)
	site := s.Provenance().Register("sampled site")
	recorded := 0
	for i := 0; i < 40; i++ {
		a, ok := s.Allocate(typ, 0)
		if !ok {
			t.Fatal("allocation failed")
		}
		s.RecordSite(a, site)
		if s.SiteOf(a) == site {
			recorded++
		}
	}
	if recorded != 10 {
		t.Fatalf("1-in-4 sampling recorded %d of 40", recorded)
	}
	st := s.Provenance().Stats()
	if st.Recorded != 10 || st.Skipped != 30 {
		t.Fatalf("stats = %+v, want Recorded=10 Skipped=30", st)
	}
}

func TestProvenanceDisabledIsInert(t *testing.T) {
	reg := NewRegistry()
	typ := reg.Define("T")
	s := NewSpace(reg, 1<<20)
	a, _ := s.Allocate(typ, 0)
	s.RecordSite(a, 7) // must not panic
	if s.SiteOf(a) != 0 || s.SiteDesc(a) != "" {
		t.Fatal("disabled provenance must report the unknown site")
	}
	s.SetMark(a)
	s.Sweep(false) // reclamation path with prov == nil
}
