package heap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAllocSweepModel drives the allocator with a randomized alloc/retain/
// sweep workload against a Go-side model: after every sweep, exactly the
// retained objects exist, their contents are intact, and the stats balance.
func TestAllocSweepModel(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reg := NewRegistry()
		s := NewSpace(reg, 4<<20)
		type obj struct {
			addr  Addr
			size  int
			stamp uint64
		}
		live := map[Addr]*obj{}
		for round := 0; round < 6; round++ {
			// Allocate a batch of word arrays of random sizes (some large).
			for i := 0; i < 300; i++ {
				n := rng.Intn(300)
				if rng.Intn(20) == 0 {
					n = BlockWords + rng.Intn(BlockWords)
				}
				a, ok := s.Allocate(TWordArray, n)
				if !ok {
					// Heap full: acceptable; stop allocating this round.
					break
				}
				if _, clash := live[a]; clash {
					t.Logf("seed %d: address %v handed out twice", seed, a)
					return false
				}
				stamp := rng.Uint64()
				if n > 0 {
					s.SetWordAt(a, 0, stamp)
					s.SetWordAt(a, n-1, stamp)
				}
				live[a] = &obj{addr: a, size: n, stamp: stamp}
			}
			// Retain a random subset; everything else dies at the sweep.
			for a, o := range live {
				if rng.Intn(2) == 0 {
					s.SetMark(a)
				} else {
					delete(live, a)
					_ = o
				}
			}
			res := s.Sweep(false)
			if res.ObjectsLive != len(live) {
				t.Logf("seed %d round %d: sweep live=%d model=%d", seed, round, res.ObjectsLive, len(live))
				return false
			}
			// Contents of survivors are intact; addresses valid.
			for a, o := range live {
				if !s.Contains(a) {
					t.Logf("seed %d: survivor %v vanished", seed, a)
					return false
				}
				if s.ArrayLen(a) != o.size {
					t.Logf("seed %d: size corrupted", seed)
					return false
				}
				if o.size > 0 && (s.WordAt(a, 0) != o.stamp || s.WordAt(a, o.size-1) != o.stamp) {
					t.Logf("seed %d: contents corrupted", seed)
					return false
				}
			}
			st := s.Stats()
			if st.LiveObjects != uint64(len(live)) {
				t.Logf("seed %d: stats.LiveObjects=%d model=%d", seed, st.LiveObjects, len(live))
				return false
			}
			if st.LiveWords > uint64(s.CapacityWords()) {
				t.Logf("seed %d: LiveWords=%d exceeds capacity (underflow?)", seed, st.LiveWords)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestFreeListNoOverlap allocates until exhaustion, frees everything, and
// re-allocates with different size classes — no two live objects may ever
// share storage.
func TestFreeListNoOverlap(t *testing.T) {
	reg := NewRegistry()
	s := NewSpace(reg, 1<<20)
	sizes := []int{1, 5, 30, 120, 250}
	var addrs []Addr
	rng := rand.New(rand.NewSource(5))
	for i := 0; ; i++ {
		a, ok := s.Allocate(TWordArray, sizes[rng.Intn(len(sizes))])
		if !ok {
			break
		}
		addrs = append(addrs, a)
	}
	s.Sweep(false) // free everything
	// Re-fill with a different mix, stamping each object.
	type span struct{ start, end uint32 }
	var spans []span
	for i := 0; ; i++ {
		n := sizes[rng.Intn(len(sizes))]
		a, ok := s.Allocate(TWordArray, n)
		if !ok {
			break
		}
		for j := 0; j < n; j++ {
			s.SetWordAt(a, j, uint64(i))
		}
		spans = append(spans, span{uint32(a), uint32(a) + uint32((n+1)*WordBytes)})
	}
	// Verify stamps: if storage overlapped, a later object clobbered an
	// earlier one's stamp.
	idx := 0
	s.ForEachObject(func(a Addr) bool {
		idx++
		return true
	})
	if idx != len(spans) {
		t.Fatalf("object count %d != %d", idx, len(spans))
	}
	for i := 0; i < len(spans); i++ {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].start < spans[j].end && spans[j].start < spans[i].end {
				t.Fatalf("overlapping objects: %+v %+v", spans[i], spans[j])
			}
		}
	}
}
