package heap

import "fmt"

// checkField panics unless slot is a valid field index for the object at a,
// returning the object's TypeInfo.
func (s *Space) checkField(a Addr, slot int) *TypeInfo {
	ti := s.reg.Info(s.TypeOf(a))
	if ti.Kind != KindObject {
		panic(fmt.Sprintf("heap: field access on %s (kind %s)", ti.Name, ti.Kind))
	}
	if slot < 0 || slot >= len(ti.Fields) {
		panic(fmt.Sprintf("heap: field %d out of range for %s (%d fields)", slot, ti.Name, len(ti.Fields)))
	}
	return ti
}

// GetRef loads the reference field at the given slot of the object at a.
func (s *Space) GetRef(a Addr, slot int) Addr {
	ti := s.checkField(a, slot)
	if !ti.Fields[slot].Ref {
		panic(fmt.Sprintf("heap: GetRef of scalar field %s.%s", ti.Name, ti.Fields[slot].Name))
	}
	return Addr(s.words[a.word()+uint32(1+slot)])
}

// SetRef stores val into the reference field at the given slot of the object
// at a, running the write barrier if one is installed.
func (s *Space) SetRef(a Addr, slot int, val Addr) {
	ti := s.checkField(a, slot)
	if !ti.Fields[slot].Ref {
		panic(fmt.Sprintf("heap: SetRef of scalar field %s.%s", ti.Name, ti.Fields[slot].Name))
	}
	s.words[a.word()+uint32(1+slot)] = uint64(val)
	if s.WriteBarrier != nil && val != Nil {
		s.WriteBarrier(a, val)
	}
}

// GetScalar loads the scalar field at the given slot of the object at a.
func (s *Space) GetScalar(a Addr, slot int) uint64 {
	ti := s.checkField(a, slot)
	if ti.Fields[slot].Ref {
		panic(fmt.Sprintf("heap: GetScalar of ref field %s.%s", ti.Name, ti.Fields[slot].Name))
	}
	return s.words[a.word()+uint32(1+slot)]
}

// SetScalar stores val into the scalar field at the given slot.
func (s *Space) SetScalar(a Addr, slot int, val uint64) {
	ti := s.checkField(a, slot)
	if ti.Fields[slot].Ref {
		panic(fmt.Sprintf("heap: SetScalar of ref field %s.%s", ti.Name, ti.Fields[slot].Name))
	}
	s.words[a.word()+uint32(1+slot)] = val
}

// checkIndex panics unless i is in range for the array at a, returning its
// TypeInfo.
func (s *Space) checkIndex(a Addr, i int) *TypeInfo {
	ti := s.reg.Info(s.TypeOf(a))
	if ti.Kind == KindObject {
		panic(fmt.Sprintf("heap: index access on non-array %s", ti.Name))
	}
	if n := s.ArrayLen(a); i < 0 || i >= n {
		panic(fmt.Sprintf("heap: index %d out of range [0,%d) for %s", i, n, ti.Name))
	}
	return ti
}

// RefAt loads element i of the reference array at a.
func (s *Space) RefAt(a Addr, i int) Addr {
	if ti := s.checkIndex(a, i); ti.Kind != KindRefArray {
		panic(fmt.Sprintf("heap: RefAt on %s", ti.Name))
	}
	return Addr(s.words[a.word()+uint32(1+i)])
}

// SetRefAt stores val into element i of the reference array at a, running
// the write barrier if one is installed.
func (s *Space) SetRefAt(a Addr, i int, val Addr) {
	if ti := s.checkIndex(a, i); ti.Kind != KindRefArray {
		panic(fmt.Sprintf("heap: SetRefAt on %s", ti.Name))
	}
	s.words[a.word()+uint32(1+i)] = uint64(val)
	if s.WriteBarrier != nil && val != Nil {
		s.WriteBarrier(a, val)
	}
}

// WordAt loads element i of the scalar array at a.
func (s *Space) WordAt(a Addr, i int) uint64 {
	if ti := s.checkIndex(a, i); ti.Kind != KindWordArray {
		panic(fmt.Sprintf("heap: WordAt on %s", ti.Name))
	}
	return s.words[a.word()+uint32(1+i)]
}

// SetWordAt stores val into element i of the scalar array at a.
func (s *Space) SetWordAt(a Addr, i int, val uint64) {
	if ti := s.checkIndex(a, i); ti.Kind != KindWordArray {
		panic(fmt.Sprintf("heap: SetWordAt on %s", ti.Name))
	}
	s.words[a.word()+uint32(1+i)] = val
}

// TypeName returns the type name of the object at a (for diagnostics).
func (s *Space) TypeName(a Addr) string { return s.reg.Name(s.TypeOf(a)) }

// ForEachRef calls fn(slot, target) for every non-nil outgoing reference of
// the object at a. For arrays, slot is the element index; for objects it is
// the field slot. This is the collector's scanning primitive.
func (s *Space) ForEachRef(a Addr, fn func(slot int, target Addr)) {
	h := s.words[a.word()]
	ti := s.reg.Info(headerType(h))
	switch ti.Kind {
	case KindObject:
		w := a.word()
		for _, off := range ti.RefOffsets {
			if t := Addr(s.words[w+uint32(off)]); t != Nil {
				fn(int(off)-1, t)
			}
		}
	case KindRefArray:
		w := a.word()
		n := headerLen(h)
		for i := 0; i < n; i++ {
			if t := Addr(s.words[w+uint32(1+i)]); t != Nil {
				fn(i, t)
			}
		}
	}
}

// RefSlots returns the number of reference slots the object at a has (fields
// for objects, elements for ref arrays, zero for scalar arrays).
func (s *Space) RefSlots(a Addr) int {
	ti := s.reg.Info(s.TypeOf(a))
	switch ti.Kind {
	case KindObject:
		return len(ti.RefOffsets)
	case KindRefArray:
		return s.ArrayLen(a)
	default:
		return 0
	}
}

// ClearRefSlot stores nil into the given reference slot (field slot for
// objects, element index for arrays) without running the write barrier.
// The assertion engine's force-true reaction uses it to sever the reference
// that keeps an asserted-dead object alive.
func (s *Space) ClearRefSlot(a Addr, slot int) {
	ti := s.reg.Info(s.TypeOf(a))
	switch ti.Kind {
	case KindObject:
		ti = s.checkField(a, slot)
		if !ti.Fields[slot].Ref {
			panic(fmt.Sprintf("heap: ClearRefSlot of scalar field %s.%s", ti.Name, ti.Fields[slot].Name))
		}
	case KindRefArray:
		s.checkIndex(a, slot)
	default:
		panic(fmt.Sprintf("heap: ClearRefSlot on %s", ti.Name))
	}
	s.words[a.word()+uint32(1+slot)] = 0
}
