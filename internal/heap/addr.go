// Package heap implements the managed heap substrate for the GC-assertions
// runtime: a word-addressed, typed object heap with header flag bits and a
// segregated-fit block allocator, in the style of a non-moving mark-sweep
// space (Jikes RVM MarkSweep, which the paper builds on).
//
// Objects live in a single word array. An Addr is a byte offset into that
// array; all objects are 8-byte aligned, so the three low bits of every
// address are zero. The collector exploits bit 0 for its path-reconstruction
// worklist trick, exactly as the paper does with word-aligned Java objects.
package heap

// Word and alignment constants for the managed space.
const (
	// WordBytes is the size of a heap word in bytes. Addresses are always
	// word-aligned, leaving AlignBits low bits free in every Addr.
	WordBytes = 8
	// AlignBits is the number of guaranteed-zero low bits in an Addr.
	AlignBits = 3

	// BlockWords is the number of words in an allocation block (32 KiB).
	BlockWords = 4096
	// BlockBytes is the byte size of an allocation block.
	BlockBytes = BlockWords * WordBytes
)

// Addr is the address of a managed object: a byte offset into the heap's
// word array. The zero Addr is the nil reference. Every valid Addr is
// word-aligned (its low AlignBits bits are zero).
type Addr uint32

// Nil is the null reference.
const Nil Addr = 0

// IsNil reports whether the address is the null reference.
func (a Addr) IsNil() bool { return a == Nil }

// word returns the word index of the address within the heap array.
func (a Addr) word() uint32 { return uint32(a) / WordBytes }

// block returns the block index containing the address.
func (a Addr) block() uint32 { return uint32(a) / BlockBytes }

// aligned reports whether the address is word-aligned.
func (a Addr) aligned() bool { return a%WordBytes == 0 }
