package heap

// Allocation-site provenance: a side table mapping object addresses to the
// allocation site that created them. A site is registered once per callsite
// (the runtime and guest VMs cache the returned SiteID next to the code),
// and each allocation optionally records its site — exhaustively, or sampled
// 1-in-N to bound the table's footprint on allocation-heavy workloads.
//
// The table is a side structure, not a header field: object headers keep
// their paper-faithful layout (flags + TypeID + length), and a runtime with
// provenance disabled pays exactly one nil-check per allocation and per
// reclamation. Entries are maintained across sweep/reuse by forgetting the
// address when its object is reclaimed, so a recycled cell can never inherit
// a previous tenant's site.
//
// Provenance shares the Space's single-goroutine discipline: registration
// and recording happen from mutator context, lookups from violation
// reporting and census accumulation inside stop-the-world collections, and
// heap-walking exports only while the runtime is quiescent.

// SiteID identifies a registered allocation site. The zero SiteID means
// "unknown" — no site was recorded for the object (provenance disabled, the
// allocation was not sampled, or the callsite never registered).
type SiteID uint32

// ProvStats summarizes provenance activity.
type ProvStats struct {
	// Sites is the number of registered allocation sites.
	Sites int
	// Recorded is the number of allocations whose site was recorded;
	// Skipped counts allocations passed over by sampling.
	Recorded uint64
	Skipped  uint64
	// TableEntries is the current number of live address→site entries.
	TableEntries int
	// SampleRate is the configured 1-in-N sampling rate (1 = exhaustive).
	SampleRate int
}

// Provenance is the allocation-site registry and address→site table for one
// Space. Create it with Space.EnableProvenance.
type Provenance struct {
	// names[id] is the site's description; names[0] is the unknown site.
	names []string
	// index dedupes registration by description, so re-registering the same
	// callsite (e.g. a reloaded guest image) returns the existing ID.
	index map[string]SiteID
	// table maps live object addresses to their recorded site.
	table map[Addr]SiteID
	// allocs[id] counts recorded allocations per site, cumulatively (never
	// decremented on reclamation). The trigger explainer diffs successive
	// snapshots to name the dominant allocating site of an inter-GC window.
	allocs []uint64
	// sample is the 1-in-N sampling rate (1 = record every allocation);
	// tick is the rolling counter driving the sampling decision.
	sample int
	tick   int

	recorded uint64
	skipped  uint64
}

// EnableProvenance creates (or reconfigures) the space's allocation-site
// table. sample is the 1-in-N sampling rate: 1 records every sited
// allocation (exhaustive), N > 1 records every Nth. It returns the table so
// callers can register sites.
func (s *Space) EnableProvenance(sample int) *Provenance {
	if sample < 1 {
		sample = 1
	}
	if s.prov == nil {
		s.prov = &Provenance{
			names:  []string{""},
			index:  make(map[string]SiteID),
			table:  make(map[Addr]SiteID),
			allocs: []uint64{0},
		}
	}
	s.prov.sample = sample
	return s.prov
}

// Provenance returns the space's allocation-site table, or nil when
// provenance is disabled.
func (s *Space) Provenance() *Provenance { return s.prov }

// RecordSite records the allocation site of the object at a, subject to the
// sampling rate. It is a no-op when provenance is disabled or site is the
// unknown site, so unsited allocation paths stay branch-cheap.
func (s *Space) RecordSite(a Addr, site SiteID) {
	p := s.prov
	if p == nil || site == 0 {
		return
	}
	p.tick++
	if p.tick < p.sample {
		p.skipped++
		return
	}
	p.tick = 0
	p.table[a] = site
	if int(site) < len(p.allocs) {
		p.allocs[site]++
	}
	p.recorded++
}

// SiteOf returns the recorded allocation site of the object at a, or the
// zero SiteID when none was recorded.
func (s *Space) SiteOf(a Addr) SiteID {
	if s.prov == nil {
		return 0
	}
	return s.prov.table[a]
}

// SiteDesc returns the description of the allocation site recorded for the
// object at a, or "" when none was recorded.
func (s *Space) SiteDesc(a Addr) string {
	if s.prov == nil {
		return ""
	}
	return s.prov.Name(s.prov.table[a])
}

// forget drops the table entry for a reclaimed object. The sweep calls it
// for every freed address when provenance is enabled.
func (p *Provenance) forget(a Addr) { delete(p.table, a) }

// Register assigns (or returns the existing) SiteID for an allocation-site
// description. Descriptions identify sites, so registration is idempotent;
// callers cache the ID next to the callsite and pass it to sited allocation
// entry points.
func (p *Provenance) Register(desc string) SiteID {
	if desc == "" {
		return 0
	}
	if id, ok := p.index[desc]; ok {
		return id
	}
	id := SiteID(len(p.names))
	p.names = append(p.names, desc)
	p.allocs = append(p.allocs, 0)
	p.index[desc] = id
	return id
}

// Name returns the description of a site (the empty string for the unknown
// site or an out-of-range ID).
func (p *Provenance) Name(id SiteID) string {
	if int(id) >= len(p.names) {
		return ""
	}
	return p.names[id]
}

// NumSites returns the number of registered sites (the unknown site is not
// counted).
func (p *Provenance) NumSites() int { return len(p.names) - 1 }

// SiteAllocs copies the cumulative per-site recorded-allocation counters
// into dst (grown if needed; index = SiteID) and returns it. Callers that
// diff successive windows reuse one buffer, so the GC-time explainer path
// allocates nothing once the site set is stable. Sampled provenance
// undercounts uniformly (only recorded allocations are counted).
func (p *Provenance) SiteAllocs(dst []uint64) []uint64 {
	if cap(dst) < len(p.allocs) {
		dst = make([]uint64, len(p.allocs))
	}
	dst = dst[:len(p.allocs)]
	copy(dst, p.allocs)
	return dst
}

// Stats returns a snapshot of provenance activity.
func (p *Provenance) Stats() ProvStats {
	return ProvStats{
		Sites:        p.NumSites(),
		Recorded:     p.recorded,
		Skipped:      p.skipped,
		TableEntries: len(p.table),
		SampleRate:   p.sample,
	}
}
