package heap

import (
	"fmt"
	"sort"
)

// Size classes for small objects, in words (header included). Objects larger
// than the last class are allocated as dedicated block spans.
var classSizes = [...]int{2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256}

const (
	numClasses    = len(classSizes)
	maxSmallWords = 256
)

// classFor returns the smallest size class holding size words.
func classFor(size int) int {
	for i, c := range classSizes {
		if size <= c {
			return i
		}
	}
	panic(fmt.Sprintf("heap: no size class for %d words", size))
}

// Block states stored in blockInfo.class for non-small blocks.
const (
	blkFree      = -1 // unused block
	blkLargeHead = -2 // first block of a large-object span
	blkLargeCont = -3 // continuation block of a large-object span
	blkReserved  = -4 // block 0: reserved so Addr 0 stays invalid
)

// blockInfo is the per-block metadata: which size class the block is carved
// into, its intrusive free-cell list, and an allocation bitmap so the sweeper
// can distinguish live cells from free ones.
type blockInfo struct {
	class     int16  // size-class index, or blkFree/blkLargeHead/blkLargeCont
	spanLen   int32  // blkLargeHead: number of blocks in the span
	freeHead  Addr   // head of this block's free-cell list (Nil if none)
	liveCells int32  // number of allocated cells in the block
	allocBits []byte // one bit per cell; nil until the block is carved
}

// Stats accumulates allocation statistics for the space.
type Stats struct {
	// ObjectsAllocated is the cumulative number of objects allocated.
	ObjectsAllocated uint64
	// WordsAllocated is the cumulative number of words allocated (cell sizes).
	WordsAllocated uint64
	// ObjectsFreed is the cumulative number of objects reclaimed by sweeps.
	ObjectsFreed uint64
	// LiveObjects is the current number of allocated objects.
	LiveObjects uint64
	// LiveWords is the current number of words held by allocated cells.
	LiveWords uint64
}

// Space is the managed heap: one large word array carved into blocks, with
// per-size-class free lists. It is non-moving, as the paper's MarkSweep
// collector requires (header bits and registered addresses stay valid).
type Space struct {
	reg     *Registry
	words   []uint64
	nblocks uint32
	blocks  []blockInfo

	// freeBlocks holds indices of free blocks, sorted ascending so large
	// allocations can find contiguous runs. Small allocations pop the end.
	freeBlocks []uint32

	// partial[class] holds indices of carved blocks with at least one free
	// cell; the allocator services requests from the last entry.
	partial [numClasses][]uint32

	// FreeHook, when non-nil, is invoked for every object freed by Sweep,
	// before its cell is recycled. The assertion engine uses it to prune
	// weak registrations (region queues, ownee lists) for dead objects.
	FreeHook func(Addr)

	// WriteBarrier, when non-nil, is invoked on every reference store
	// (SetRef/SetRefAt) with the source object and new value. The
	// generational collector uses it to maintain its remembered set.
	WriteBarrier func(src, val Addr)

	// keepMarks is the sticky-marks setting of the in-progress sweep.
	keepMarks bool

	// prov is the allocation-site provenance table; nil (the default) costs
	// one nil-check on the sited-allocation and reclamation paths.
	prov *Provenance

	stats Stats
}

// NewSpace creates a heap of at least heapBytes bytes (rounded up to whole
// blocks; block 0 is reserved so that Addr 0 means nil).
func NewSpace(reg *Registry, heapBytes int) *Space {
	if heapBytes < 2*BlockBytes {
		heapBytes = 2 * BlockBytes
	}
	nblocks := uint32((heapBytes + BlockBytes - 1) / BlockBytes)
	s := &Space{
		reg:     reg,
		words:   make([]uint64, int(nblocks)*BlockWords),
		nblocks: nblocks,
		blocks:  make([]blockInfo, nblocks),
	}
	// Block 0 is reserved: Addr 0 must stay invalid.
	s.blocks[0].class = blkReserved
	for i := uint32(1); i < nblocks; i++ {
		s.blocks[i].class = blkFree
		s.freeBlocks = append(s.freeBlocks, i)
	}
	return s
}

// Registry returns the type registry the space was created with.
func (s *Space) Registry() *Registry { return s.reg }

// Stats returns a snapshot of the space's allocation statistics.
func (s *Space) Stats() Stats { return s.stats }

// CapacityWords returns the total heap capacity in words.
func (s *Space) CapacityWords() int { return len(s.words) }

// OccupancyPct returns the share of the heap currently held by allocated
// cells, as a percentage of capacity. LiveWords is maintained on every
// allocation and reclamation, so read at collection-trigger time this is the
// occupancy that forced the collection — garbage not yet swept included.
func (s *Space) OccupancyPct() float64 {
	if len(s.words) == 0 {
		return 0
	}
	return 100 * float64(s.stats.LiveWords) / float64(len(s.words))
}

// blockStart returns the address of the first word of block bi.
func blockStart(bi uint32) Addr { return Addr(bi * BlockBytes) }

// carveBlock takes a free block, carves it into cells of the given class,
// and registers it as a partial block. It reports whether a block was free.
func (s *Space) carveBlock(class int) bool {
	if len(s.freeBlocks) == 0 {
		return false
	}
	bi := s.freeBlocks[len(s.freeBlocks)-1]
	s.freeBlocks = s.freeBlocks[:len(s.freeBlocks)-1]
	b := &s.blocks[bi]
	cellWords := classSizes[class]
	ncells := BlockWords / cellWords
	b.class = int16(class)
	b.liveCells = 0
	if b.allocBits == nil || len(b.allocBits) < (ncells+7)/8 {
		b.allocBits = make([]byte, (ncells+7)/8)
	} else {
		for i := range b.allocBits {
			b.allocBits[i] = 0
		}
	}
	// Thread the free list through the cells, front to back.
	base := blockStart(bi)
	b.freeHead = base
	for c := 0; c < ncells; c++ {
		cell := base + Addr(c*cellWords*WordBytes)
		next := Nil
		if c+1 < ncells {
			next = cell + Addr(cellWords*WordBytes)
		}
		s.words[cell.word()] = uint64(next)
	}
	s.partial[class] = append(s.partial[class], bi)
	return true
}

// findRun locates n contiguous free blocks and removes them from the free
// list, returning the first index. It returns false if no run exists.
func (s *Space) findRun(n int) (uint32, bool) {
	if n <= 0 {
		n = 1
	}
	fb := s.freeBlocks
	if len(fb) < n {
		return 0, false
	}
	sort.Slice(fb, func(i, j int) bool { return fb[i] < fb[j] })
	runStart := 0
	for i := 1; i <= len(fb); i++ {
		if i < len(fb) && fb[i] == fb[i-1]+1 {
			if i-runStart+1 >= n {
				first := fb[runStart]
				s.freeBlocks = append(fb[:runStart], fb[runStart+n:]...)
				return first, true
			}
			continue
		}
		if i-runStart >= n {
			first := fb[runStart]
			s.freeBlocks = append(fb[:runStart], fb[runStart+n:]...)
			return first, true
		}
		runStart = i
	}
	return 0, false
}

// cellIndex returns the cell number of addr within its block.
func (s *Space) cellIndex(b *blockInfo, a Addr) int {
	off := int(uint32(a) % BlockBytes)
	return off / (classSizes[b.class] * WordBytes)
}

func bitGet(bits []byte, i int) bool { return bits[i>>3]&(1<<(i&7)) != 0 }
func bitSet(bits []byte, i int)      { bits[i>>3] |= 1 << (i & 7) }
func bitClear(bits []byte, i int)    { bits[i>>3] &^= 1 << (i & 7) }

// Contains reports whether a is a plausible object address: word-aligned,
// inside the heap, inside an allocated cell. Used by invariant checks.
func (s *Space) Contains(a Addr) bool {
	if a.IsNil() || !a.aligned() || int(a.word()) >= len(s.words) {
		return false
	}
	b := &s.blocks[a.block()]
	switch {
	case b.class >= 0:
		ci := s.cellIndex(b, a)
		cellStart := blockStart(a.block()) + Addr(ci*classSizes[b.class]*WordBytes)
		return cellStart == a && bitGet(b.allocBits, ci)
	case b.class == blkLargeHead:
		return a == blockStart(a.block()) && a.block() != 0
	default:
		return false
	}
}

// CheckRef panics if a is neither nil nor a valid object address. The managed
// runtime calls it on stores in debug configurations.
func (s *Space) CheckRef(a Addr) {
	if !a.IsNil() && !s.Contains(a) {
		panic(fmt.Sprintf("heap: invalid reference %#x", uint32(a)))
	}
}

// CellWords returns the allocator footprint of the object at a in words: its
// size-class cell for small objects, the whole block span for large ones.
// This is the quantity the sweep returns to the free pool when the object
// dies (and what Stats.LiveWords accumulates), so introspection totals built
// from it reconcile exactly against the sweep's accounting.
func (s *Space) CellWords(a Addr) int {
	b := &s.blocks[a.block()]
	switch {
	case b.class >= 0:
		return classSizes[b.class]
	case b.class == blkLargeHead:
		return int(b.spanLen) * BlockWords
	default:
		return 0
	}
}
