package heap

// SweepResult summarizes one sweep pass.
type SweepResult struct {
	// ObjectsFreed is the number of objects reclaimed.
	ObjectsFreed int
	// WordsFreed is the number of words returned to free lists.
	WordsFreed int
	// ObjectsLive is the number of objects that survived (marks cleared).
	ObjectsLive int
}

// Sweep reclaims every allocated object whose mark bit is clear, rebuilds
// the per-block free lists, and returns empty blocks to the block pool.
// Survivors' mark bits are cleared unless keepMarks is set (sticky marks,
// used by generational minor collections). FreeHook (if set) is called for
// each freed object before its storage is recycled, which the assertion
// engine uses to prune weak registrations.
//
// Sweep corresponds to the sweep phase of the paper's MarkSweep collector;
// the collector package calls it after tracing.
func (s *Space) Sweep(keepMarks bool) SweepResult {
	var res SweepResult
	s.keepMarks = keepMarks
	for class := range s.partial {
		s.partial[class] = s.partial[class][:0]
	}
	for bi := uint32(0); bi < s.nblocks; bi++ {
		b := &s.blocks[bi]
		switch {
		case b.class >= 0:
			s.sweepSmallBlock(bi, b, &res)
		case b.class == blkLargeHead:
			s.sweepLargeSpan(bi, b, &res)
		}
	}
	s.stats.ObjectsFreed += uint64(res.ObjectsFreed)
	s.stats.LiveObjects -= uint64(res.ObjectsFreed)
	s.stats.LiveWords -= uint64(res.WordsFreed)
	return res
}

func (s *Space) sweepSmallBlock(bi uint32, b *blockInfo, res *SweepResult) {
	cellWords := classSizes[b.class]
	ncells := BlockWords / cellWords
	base := blockStart(bi)
	b.freeHead = Nil
	var tail Addr // last free cell, to append in address order
	free := 0
	for c := 0; c < ncells; c++ {
		cell := base + Addr(c*cellWords*WordBytes)
		if bitGet(b.allocBits, c) {
			if s.words[cell.word()]&uint64(FlagMark) != 0 {
				if !s.keepMarks {
					s.words[cell.word()] &^= uint64(FlagMark)
				}
				res.ObjectsLive++
				continue
			}
			// Unreachable: reclaim.
			if s.FreeHook != nil {
				s.FreeHook(cell)
			}
			if s.prov != nil {
				s.prov.forget(cell)
			}
			bitClear(b.allocBits, c)
			b.liveCells--
			res.ObjectsFreed++
			res.WordsFreed += cellWords
			s.words[cell.word()] = 0 // clear stale header flags
		}
		// Cell is free: thread it onto the block free list.
		s.words[cell.word()] = 0
		if tail == Nil {
			b.freeHead = cell
		} else {
			s.words[tail.word()] = uint64(cell)
		}
		tail = cell
		free++
	}
	if b.liveCells == 0 {
		// Whole block is empty: return it to the block pool.
		b.class = blkFree
		b.freeHead = Nil
		s.freeBlocks = append(s.freeBlocks, bi)
		return
	}
	if free > 0 {
		s.partial[classFor(cellWords)] = append(s.partial[classFor(cellWords)], bi)
	}
}

func (s *Space) sweepLargeSpan(bi uint32, b *blockInfo, res *SweepResult) {
	a := blockStart(bi)
	if s.words[a.word()]&uint64(FlagMark) != 0 {
		if !s.keepMarks {
			s.words[a.word()] &^= uint64(FlagMark)
		}
		res.ObjectsLive++
		return
	}
	if s.FreeHook != nil {
		s.FreeHook(a)
	}
	if s.prov != nil {
		s.prov.forget(a)
	}
	n := int(b.spanLen)
	for i := 0; i < n; i++ {
		blk := &s.blocks[bi+uint32(i)]
		blk.class = blkFree
		blk.liveCells = 0
		s.freeBlocks = append(s.freeBlocks, bi+uint32(i))
	}
	s.words[a.word()] = 0
	res.ObjectsFreed++
	res.WordsFreed += n * BlockWords
}

// ForEachObject calls fn for every allocated object, in address order,
// stopping early if fn returns false. It is used by heap dumps, invariant
// checks, and tests.
func (s *Space) ForEachObject(fn func(Addr) bool) {
	for bi := uint32(0); bi < s.nblocks; bi++ {
		b := &s.blocks[bi]
		switch {
		case b.class >= 0:
			cellWords := classSizes[b.class]
			ncells := BlockWords / cellWords
			base := blockStart(bi)
			for c := 0; c < ncells; c++ {
				if bitGet(b.allocBits, c) {
					if !fn(base + Addr(c*cellWords*WordBytes)) {
						return
					}
				}
			}
		case b.class == blkLargeHead:
			if b.liveCells > 0 {
				if !fn(blockStart(bi)) {
					return
				}
			}
		}
	}
}
