package heap

import (
	"fmt"
	"sort"
)

// TypeID identifies a registered object type. IDs are dense small integers so
// per-type side tables (e.g. assert-instances counters) can be flat arrays,
// mirroring the paper's per-RVMClass instance limit/count fields.
type TypeID uint32

// Builtin type IDs. The registry pre-defines array types so workloads can
// allocate arrays without declaring them.
const (
	// TInvalid is never a valid type.
	TInvalid TypeID = 0
	// TRefArray is the builtin reference-array type ("[Ljava/lang/Object;").
	TRefArray TypeID = 1
	// TWordArray is the builtin scalar-array type (one word per element).
	TWordArray TypeID = 2

	firstUserType TypeID = 3
)

// Kind classifies the layout of a type.
type Kind uint8

// Layout kinds.
const (
	// KindObject is a fixed-shape object: header word + one word per field.
	KindObject Kind = iota
	// KindRefArray is a variable-length array of references.
	KindRefArray
	// KindWordArray is a variable-length array of scalar words.
	KindWordArray
)

func (k Kind) String() string {
	switch k {
	case KindObject:
		return "object"
	case KindRefArray:
		return "ref-array"
	case KindWordArray:
		return "word-array"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Field describes one slot of a KindObject type.
type Field struct {
	// Name is the field name, used in diagnostics and path reports.
	Name string
	// Ref marks the field as a reference the collector must trace.
	Ref bool
}

// TypeInfo is the layout descriptor for a registered type, the analogue of a
// class's GC map in a real VM.
type TypeInfo struct {
	// ID is the type's dense identifier.
	ID TypeID
	// Name is the fully qualified type name (e.g. "spec/jbb/Order").
	Name string
	// Kind selects the layout.
	Kind Kind
	// Fields holds the declared fields, in layout order (KindObject only).
	Fields []Field
	// RefOffsets lists the word offsets (from the object base, so the first
	// field is offset 1) of all reference fields, ascending (KindObject only).
	RefOffsets []int32
	// fieldIndex maps field name to slot index.
	fieldIndex map[string]int
}

// SizeWords returns the total object size in words, including the header, for
// an instance with the given array length (ignored for KindObject).
func (t *TypeInfo) SizeWords(arrayLen int) int {
	switch t.Kind {
	case KindObject:
		return 1 + len(t.Fields)
	default:
		return 1 + arrayLen
	}
}

// NumFields returns the number of declared fields.
func (t *TypeInfo) NumFields() int { return len(t.Fields) }

// FieldIndex returns the slot index of the named field.
// It panics if the field does not exist; field names are compile-time
// constants of the embedding program, so a miss is a programming error.
func (t *TypeInfo) FieldIndex(name string) int {
	i, ok := t.fieldIndex[name]
	if !ok {
		panic(fmt.Sprintf("heap: type %s has no field %q", t.Name, name))
	}
	return i
}

// FieldName returns the name of the field at the given slot, or a synthetic
// name for array elements and unknown slots.
func (t *TypeInfo) FieldName(slot int) string {
	if t.Kind == KindObject && slot >= 0 && slot < len(t.Fields) {
		return t.Fields[slot].Name
	}
	return fmt.Sprintf("[%d]", slot)
}

// Registry holds all registered types. It is the analogue of the VM's loaded
// class table. A Registry is not safe for concurrent mutation; workloads
// register types during setup.
type Registry struct {
	types []*TypeInfo // indexed by TypeID
	byNam map[string]TypeID
}

// NewRegistry creates a registry pre-populated with the builtin array types.
func NewRegistry() *Registry {
	r := &Registry{byNam: make(map[string]TypeID)}
	r.types = make([]*TypeInfo, firstUserType)
	r.types[TInvalid] = &TypeInfo{ID: TInvalid, Name: "<invalid>", Kind: KindObject}
	r.types[TRefArray] = &TypeInfo{ID: TRefArray, Name: "[Object", Kind: KindRefArray}
	r.types[TWordArray] = &TypeInfo{ID: TWordArray, Name: "[word", Kind: KindWordArray}
	r.byNam["[Object"] = TRefArray
	r.byNam["[word"] = TWordArray
	return r
}

// Define registers a new object type with the given fields and returns its
// TypeID. Defining a duplicate name or exceeding the header's type-ID width
// panics: types are program structure, not runtime data.
func (r *Registry) Define(name string, fields ...Field) TypeID {
	if _, dup := r.byNam[name]; dup {
		panic(fmt.Sprintf("heap: type %q already defined", name))
	}
	id := TypeID(len(r.types))
	if uint64(id) > maxTypeID {
		panic("heap: type registry overflow")
	}
	t := &TypeInfo{
		ID:         id,
		Name:       name,
		Kind:       KindObject,
		Fields:     append([]Field(nil), fields...),
		fieldIndex: make(map[string]int, len(fields)),
	}
	for i, f := range fields {
		if _, dup := t.fieldIndex[f.Name]; dup {
			panic(fmt.Sprintf("heap: type %q has duplicate field %q", name, f.Name))
		}
		t.fieldIndex[f.Name] = i
		if f.Ref {
			t.RefOffsets = append(t.RefOffsets, int32(1+i))
		}
	}
	sort.Slice(t.RefOffsets, func(a, b int) bool { return t.RefOffsets[a] < t.RefOffsets[b] })
	r.types = append(r.types, t)
	r.byNam[name] = id
	return id
}

// Lookup returns the TypeID for a name and whether it exists.
func (r *Registry) Lookup(name string) (TypeID, bool) {
	id, ok := r.byNam[name]
	return id, ok
}

// Info returns the TypeInfo for an ID. It panics on an unknown ID.
func (r *Registry) Info(id TypeID) *TypeInfo {
	if int(id) >= len(r.types) || r.types[id] == nil {
		panic(fmt.Sprintf("heap: unknown TypeID %d", id))
	}
	return r.types[id]
}

// NumTypes returns the number of registered types (including builtins).
func (r *Registry) NumTypes() int { return len(r.types) }

// ForEachType calls fn for every registered type (builtins included), in
// TypeID order. Side tables indexed by TypeID (census counters, per-type
// gauges) use it to stay in sync with the registry.
func (r *Registry) ForEachType(fn func(*TypeInfo)) {
	for _, t := range r.types {
		if t != nil && t.ID != TInvalid {
			fn(t)
		}
	}
}

// Name returns the name of a type, tolerating unknown IDs (for diagnostics).
func (r *Registry) Name(id TypeID) string {
	if int(id) < len(r.types) && r.types[id] != nil {
		return r.types[id].Name
	}
	return fmt.Sprintf("<type %d>", id)
}
