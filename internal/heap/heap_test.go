package heap

import (
	"fmt"
	"testing"
)

func testRegistry(t *testing.T) (*Registry, TypeID, TypeID) {
	t.Helper()
	reg := NewRegistry()
	node := reg.Define("Node",
		Field{Name: "next", Ref: true},
		Field{Name: "val", Ref: false},
	)
	pair := reg.Define("Pair",
		Field{Name: "a", Ref: true},
		Field{Name: "b", Ref: true},
	)
	return reg, node, pair
}

func TestRegistryBasics(t *testing.T) {
	reg, node, pair := testRegistry(t)
	if got := reg.NumTypes(); got != 5 {
		t.Errorf("NumTypes = %d, want 5 (3 builtins + 2)", got)
	}
	ni := reg.Info(node)
	if ni.Name != "Node" || ni.Kind != KindObject || ni.NumFields() != 2 {
		t.Errorf("Node info = %+v", ni)
	}
	if ni.FieldIndex("next") != 0 || ni.FieldIndex("val") != 1 {
		t.Error("field indexes wrong")
	}
	if got := ni.SizeWords(0); got != 3 {
		t.Errorf("Node size = %d words, want 3", got)
	}
	if len(ni.RefOffsets) != 1 || ni.RefOffsets[0] != 1 {
		t.Errorf("Node ref offsets = %v", ni.RefOffsets)
	}
	pi := reg.Info(pair)
	if len(pi.RefOffsets) != 2 {
		t.Errorf("Pair ref offsets = %v", pi.RefOffsets)
	}
	if id, ok := reg.Lookup("Node"); !ok || id != node {
		t.Error("Lookup(Node) failed")
	}
	if _, ok := reg.Lookup("Missing"); ok {
		t.Error("Lookup(Missing) should fail")
	}
	if reg.Name(node) != "Node" {
		t.Error("Name(node)")
	}
	if reg.Name(TypeID(999)) == "" {
		t.Error("Name of unknown should be non-empty diagnostic")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg, _, _ := testRegistry(t)
	mustPanic(t, "duplicate type", func() { reg.Define("Node") })
	mustPanic(t, "duplicate field", func() {
		reg.Define("Bad", Field{Name: "x", Ref: true}, Field{Name: "x", Ref: false})
	})
}

func TestFieldNameFallback(t *testing.T) {
	reg, node, _ := testRegistry(t)
	ni := reg.Info(node)
	if got := ni.FieldName(0); got != "next" {
		t.Errorf("FieldName(0) = %q", got)
	}
	if got := ni.FieldName(99); got != "[99]" {
		t.Errorf("FieldName(99) = %q", got)
	}
	mustPanic(t, "unknown field", func() { ni.FieldIndex("zzz") })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestAllocateAndAccess(t *testing.T) {
	reg, node, _ := testRegistry(t)
	s := NewSpace(reg, 1<<20)

	a, ok := s.Allocate(node, 0)
	if !ok || a == Nil {
		t.Fatal("allocation failed")
	}
	if !a.aligned() {
		t.Error("address not aligned")
	}
	if s.TypeOf(a) != node {
		t.Errorf("TypeOf = %v", s.TypeOf(a))
	}
	if s.TypeName(a) != "Node" {
		t.Errorf("TypeName = %q", s.TypeName(a))
	}
	b, _ := s.Allocate(node, 0)
	s.SetRef(a, 0, b)
	if got := s.GetRef(a, 0); got != b {
		t.Errorf("GetRef = %v, want %v", got, b)
	}
	s.SetScalar(a, 1, 42)
	if got := s.GetScalar(a, 1); got != 42 {
		t.Errorf("GetScalar = %d", got)
	}
	if !s.Contains(a) || !s.Contains(b) {
		t.Error("Contains should be true for live objects")
	}
	if s.Contains(a + 8) {
		t.Error("Contains of interior pointer should be false")
	}
	if s.Contains(Nil) {
		t.Error("Contains(Nil) should be false")
	}
}

func TestAccessorTypeChecks(t *testing.T) {
	reg, node, _ := testRegistry(t)
	s := NewSpace(reg, 1<<20)
	a, _ := s.Allocate(node, 0)
	arr, _ := s.Allocate(TRefArray, 4)
	warr, _ := s.Allocate(TWordArray, 4)

	mustPanic(t, "GetRef on scalar field", func() { s.GetRef(a, 1) })
	mustPanic(t, "SetScalar on ref field", func() { s.SetScalar(a, 0, 1) })
	mustPanic(t, "field out of range", func() { s.GetRef(a, 7) })
	mustPanic(t, "field access on array", func() { s.GetRef(arr, 0) })
	mustPanic(t, "index on object", func() { s.RefAt(a, 0) })
	mustPanic(t, "index out of range", func() { s.RefAt(arr, 4) })
	mustPanic(t, "RefAt on word array", func() { s.RefAt(warr, 0) })
	mustPanic(t, "WordAt on ref array", func() { s.WordAt(arr, 0) })
	mustPanic(t, "arrayLen for object type", func() { s.Allocate(node, 3) })
	mustPanic(t, "negative len", func() { s.Allocate(TRefArray, -1) })

	s.SetRefAt(arr, 0, a)
	if s.RefAt(arr, 0) != a {
		t.Error("SetRefAt/RefAt roundtrip")
	}
	s.SetWordAt(warr, 3, 99)
	if s.WordAt(warr, 3) != 99 {
		t.Error("SetWordAt/WordAt roundtrip")
	}
	if s.ArrayLen(arr) != 4 {
		t.Errorf("ArrayLen = %d", s.ArrayLen(arr))
	}
}

func TestHeaderFlags(t *testing.T) {
	reg, node, _ := testRegistry(t)
	s := NewSpace(reg, 1<<20)
	a, _ := s.Allocate(node, 0)
	for _, f := range []Flag{FlagMark, FlagDead, FlagUnshared, FlagOwned, FlagOwnee, FlagOwner, FlagRemembered} {
		if s.HasFlag(a, f) {
			t.Errorf("flag %x set on fresh object", f)
		}
		s.SetFlag(a, f)
		if !s.HasFlag(a, f) {
			t.Errorf("flag %x not set after SetFlag", f)
		}
	}
	if s.Flags(a)&FlagDead == 0 {
		t.Error("Flags() missing dead bit")
	}
	// Flags must not disturb the type or array length.
	if s.TypeOf(a) != node {
		t.Error("flags corrupted type")
	}
	s.ClearFlag(a, FlagDead|FlagOwned)
	if s.HasFlag(a, FlagDead) || s.HasFlag(a, FlagOwned) {
		t.Error("ClearFlag of combined mask failed")
	}
	if !s.HasFlag(a, FlagUnshared) {
		t.Error("ClearFlag cleared unrelated bit")
	}
	arr, _ := s.Allocate(TWordArray, 123)
	s.SetMark(arr)
	if s.ArrayLen(arr) != 123 {
		t.Error("mark corrupted array length")
	}
	s.ClearMark(arr)
	if s.Marked(arr) {
		t.Error("ClearMark")
	}
}

func TestLargeObjects(t *testing.T) {
	reg, _, _ := testRegistry(t)
	s := NewSpace(reg, 4<<20)
	// One block holds 4096 words; 3 blocks span.
	n := 3*BlockWords - 10
	a, ok := s.Allocate(TWordArray, n)
	if !ok {
		t.Fatal("large allocation failed")
	}
	if s.ArrayLen(a) != n {
		t.Errorf("large len = %d", s.ArrayLen(a))
	}
	s.SetWordAt(a, n-1, 7)
	if s.WordAt(a, n-1) != 7 {
		t.Error("large array tail access")
	}
	if !s.Contains(a) {
		t.Error("Contains(large) = false")
	}
	// Free it: unmarked sweep reclaims the whole span.
	res := s.Sweep(false)
	if res.ObjectsFreed != 1 {
		t.Errorf("freed = %d, want 1", res.ObjectsFreed)
	}
	// The span is reusable.
	b, ok := s.Allocate(TWordArray, n)
	if !ok {
		t.Fatal("re-allocation of span failed")
	}
	if b != a {
		t.Logf("note: span reallocated at different address (%v vs %v): fine", b, a)
	}
}

func TestSweepRecyclesAndKeepsSurvivors(t *testing.T) {
	reg, node, _ := testRegistry(t)
	s := NewSpace(reg, 1<<20)
	var survivors []Addr
	var doomed []Addr
	for i := 0; i < 1000; i++ {
		a, ok := s.Allocate(node, 0)
		if !ok {
			t.Fatal("alloc failed")
		}
		if i%2 == 0 {
			s.SetMark(a)
			survivors = append(survivors, a)
		} else {
			doomed = append(doomed, a)
		}
	}
	var freed []Addr
	s.FreeHook = func(a Addr) { freed = append(freed, a) }
	res := s.Sweep(false)
	if res.ObjectsFreed != 500 || res.ObjectsLive != 500 {
		t.Fatalf("sweep freed=%d live=%d", res.ObjectsFreed, res.ObjectsLive)
	}
	if len(freed) != 500 {
		t.Errorf("FreeHook called %d times", len(freed))
	}
	for _, a := range survivors {
		if !s.Contains(a) {
			t.Fatal("survivor vanished")
		}
		if s.Marked(a) {
			t.Fatal("survivor mark not cleared")
		}
	}
	for _, a := range doomed {
		if s.Contains(a) {
			t.Fatal("doomed object still allocated")
		}
	}
	// The freed cells are reusable.
	for i := 0; i < 500; i++ {
		if _, ok := s.Allocate(node, 0); !ok {
			t.Fatal("reuse alloc failed")
		}
	}
}

func TestSweepKeepMarks(t *testing.T) {
	reg, node, _ := testRegistry(t)
	s := NewSpace(reg, 1<<20)
	a, _ := s.Allocate(node, 0)
	s.SetMark(a)
	s.Sweep(true)
	if !s.Marked(a) {
		t.Error("sticky sweep cleared mark")
	}
	s.Sweep(false)
	if s.Marked(a) {
		t.Error("normal sweep kept mark")
	}
}

func TestExhaustionReturnsFalse(t *testing.T) {
	reg, _, _ := testRegistry(t)
	s := NewSpace(reg, 2*BlockBytes) // minimum: 1 usable block
	var last Addr
	n := 0
	for {
		a, ok := s.Allocate(TWordArray, 100)
		if !ok {
			break
		}
		last = a
		n++
		if n > 100000 {
			t.Fatal("no exhaustion")
		}
	}
	if n == 0 || last == Nil {
		t.Fatal("nothing allocated before exhaustion")
	}
	// After a full sweep (nothing marked), allocation works again.
	s.Sweep(false)
	if _, ok := s.Allocate(TWordArray, 100); !ok {
		t.Fatal("allocation after sweep failed")
	}
}

func TestForEachRefAndSlots(t *testing.T) {
	reg, node, pair := testRegistry(t)
	s := NewSpace(reg, 1<<20)
	p, _ := s.Allocate(pair, 0)
	a, _ := s.Allocate(node, 0)
	b, _ := s.Allocate(node, 0)
	s.SetRef(p, 0, a)
	s.SetRef(p, 1, b)
	var got []Addr
	var slots []int
	s.ForEachRef(p, func(slot int, t Addr) {
		slots = append(slots, slot)
		got = append(got, t)
	})
	if len(got) != 2 || got[0] != a || got[1] != b || slots[0] != 0 || slots[1] != 1 {
		t.Errorf("ForEachRef = %v at %v", got, slots)
	}
	if s.RefSlots(p) != 2 {
		t.Errorf("RefSlots(pair) = %d", s.RefSlots(p))
	}
	// Nil fields are skipped.
	s.SetRef(p, 0, Nil)
	got = got[:0]
	s.ForEachRef(p, func(_ int, t Addr) { got = append(got, t) })
	if len(got) != 1 || got[0] != b {
		t.Errorf("ForEachRef after nil = %v", got)
	}
	// Arrays.
	arr, _ := s.Allocate(TRefArray, 3)
	s.SetRefAt(arr, 1, a)
	got = got[:0]
	s.ForEachRef(arr, func(slot int, tgt Addr) {
		if slot != 1 || tgt != a {
			t.Errorf("array edge %d -> %v", slot, tgt)
		}
		got = append(got, tgt)
	})
	if len(got) != 1 {
		t.Errorf("array ForEachRef count = %d", len(got))
	}
	if s.RefSlots(arr) != 3 {
		t.Errorf("RefSlots(arr) = %d", s.RefSlots(arr))
	}
	// Word arrays have no ref slots.
	warr, _ := s.Allocate(TWordArray, 3)
	s.ForEachRef(warr, func(int, Addr) { t.Error("word array has refs?") })
	if s.RefSlots(warr) != 0 {
		t.Error("RefSlots(word array) != 0")
	}
}

func TestClearRefSlot(t *testing.T) {
	reg, node, _ := testRegistry(t)
	s := NewSpace(reg, 1<<20)
	a, _ := s.Allocate(node, 0)
	b, _ := s.Allocate(node, 0)
	s.SetRef(a, 0, b)
	s.ClearRefSlot(a, 0)
	if s.GetRef(a, 0) != Nil {
		t.Error("ClearRefSlot on field")
	}
	arr, _ := s.Allocate(TRefArray, 2)
	s.SetRefAt(arr, 1, b)
	s.ClearRefSlot(arr, 1)
	if s.RefAt(arr, 1) != Nil {
		t.Error("ClearRefSlot on array")
	}
	mustPanic(t, "ClearRefSlot scalar field", func() { s.ClearRefSlot(a, 1) })
	warr, _ := s.Allocate(TWordArray, 2)
	mustPanic(t, "ClearRefSlot word array", func() { s.ClearRefSlot(warr, 0) })
}

func TestForEachObject(t *testing.T) {
	reg, node, _ := testRegistry(t)
	s := NewSpace(reg, 1<<20)
	want := map[Addr]bool{}
	for i := 0; i < 100; i++ {
		a, _ := s.Allocate(node, 0)
		want[a] = true
	}
	big, _ := s.Allocate(TWordArray, BlockWords+5)
	want[big] = true
	got := map[Addr]bool{}
	s.ForEachObject(func(a Addr) bool {
		got[a] = true
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ForEachObject saw %d objects, want %d", len(got), len(want))
	}
	for a := range want {
		if !got[a] {
			t.Errorf("missing %v", a)
		}
	}
	// Early stop.
	n := 0
	s.ForEachObject(func(Addr) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestStatsAccounting(t *testing.T) {
	reg, node, _ := testRegistry(t)
	s := NewSpace(reg, 1<<20)
	for i := 0; i < 10; i++ {
		s.Allocate(node, 0)
	}
	st := s.Stats()
	if st.ObjectsAllocated != 10 || st.LiveObjects != 10 {
		t.Errorf("stats after alloc: %+v", st)
	}
	s.Sweep(false)
	st = s.Stats()
	if st.ObjectsFreed != 10 || st.LiveObjects != 0 {
		t.Errorf("stats after sweep: %+v", st)
	}
	if st.WordsAllocated == 0 {
		t.Error("WordsAllocated = 0")
	}
}

func TestLargeObjectStatsBalance(t *testing.T) {
	// Regression: large-object allocation must account the whole block
	// span, matching what the sweep subtracts, or LiveWords underflows.
	reg, _, _ := testRegistry(t)
	s := NewSpace(reg, 8<<20)
	for i := 0; i < 20; i++ {
		if _, ok := s.Allocate(TWordArray, BlockWords+100); !ok {
			t.Fatal("alloc failed")
		}
		s.Sweep(false) // everything unmarked: freed immediately
	}
	st := s.Stats()
	if st.LiveObjects != 0 || st.LiveWords != 0 {
		t.Fatalf("stats unbalanced after large churn: %+v", st)
	}
	if int64(st.LiveWords) < 0 || st.LiveWords > uint64(s.CapacityWords()) {
		t.Fatalf("LiveWords out of range: %d", st.LiveWords)
	}
}

func TestWriteBarrierFires(t *testing.T) {
	reg, node, _ := testRegistry(t)
	s := NewSpace(reg, 1<<20)
	var fired []Addr
	s.WriteBarrier = func(src, val Addr) { fired = append(fired, src) }
	a, _ := s.Allocate(node, 0)
	b, _ := s.Allocate(node, 0)
	s.SetRef(a, 0, b)
	if len(fired) != 1 || fired[0] != a {
		t.Errorf("barrier on SetRef: %v", fired)
	}
	s.SetRef(a, 0, Nil) // nil stores do not need the barrier
	if len(fired) != 1 {
		t.Error("barrier fired on nil store")
	}
	arr, _ := s.Allocate(TRefArray, 2)
	s.SetRefAt(arr, 0, b)
	if len(fired) != 2 || fired[1] != arr {
		t.Errorf("barrier on SetRefAt: %v", fired)
	}
}

func TestSizeClassesCoverAllSizes(t *testing.T) {
	reg := NewRegistry()
	s := NewSpace(reg, 8<<20)
	// Allocate word arrays of every size up to just past the large-object
	// threshold and verify contents isolation (no overlap).
	addrs := make(map[Addr]int)
	for n := 0; n <= maxSmallWords+10; n++ {
		a, ok := s.Allocate(TWordArray, n)
		if !ok {
			t.Fatalf("alloc len %d failed", n)
		}
		for i := 0; i < n; i++ {
			s.SetWordAt(a, i, uint64(n))
		}
		addrs[a] = n
	}
	for a, n := range addrs {
		if s.ArrayLen(a) != n {
			t.Fatalf("len mismatch at %v: %d != %d", a, s.ArrayLen(a), n)
		}
		for i := 0; i < n; i++ {
			if s.WordAt(a, i) != uint64(n) {
				t.Fatalf("content clobbered at %v[%d]", a, i)
			}
		}
	}
}

func TestCheckRef(t *testing.T) {
	reg, node, _ := testRegistry(t)
	s := NewSpace(reg, 1<<20)
	a, _ := s.Allocate(node, 0)
	s.CheckRef(Nil) // nil is fine
	s.CheckRef(a)   // live object is fine
	mustPanic(t, "unaligned", func() { s.CheckRef(a + 1) })
	mustPanic(t, "free cell", func() { s.CheckRef(a + Addr(classSizes[classFor(3)]*WordBytes)) })
}

func TestFreeWords(t *testing.T) {
	reg, node, _ := testRegistry(t)
	s := NewSpace(reg, 1<<20)
	before := s.FreeWords()
	if before <= 0 {
		t.Fatal("no free words in fresh space")
	}
	for i := 0; i < 100; i++ {
		s.Allocate(node, 0)
	}
	after := s.FreeWords()
	if after >= before {
		t.Errorf("FreeWords did not decrease: %d -> %d", before, after)
	}
}

func TestExample(t *testing.T) {
	// Kind stringer coverage.
	for k, want := range map[Kind]string{KindObject: "object", KindRefArray: "ref-array", KindWordArray: "word-array", Kind(9): "Kind(9)"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if fmt.Sprint(Nil.IsNil()) != "true" {
		t.Error("Nil.IsNil")
	}
}
