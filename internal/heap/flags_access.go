package heap

// Flags returns all header flag bits of the object at a in one read. The
// assertion engine uses it so each traced edge costs a single header load,
// matching the paper's "the data is already in cache" argument (§2.3.1).
func (s *Space) Flags(a Addr) Flag { return Flag(s.words[a.word()] & flagMask) }
