package heap

import "sync/atomic"

// Atomic header access for the parallel mark engine.
//
// # Concurrency rules (the single-writer rule)
//
// The heap is single-threaded except during a parallel mark phase, and even
// then only *header words* are shared:
//
//   - Mutator side: all accessors (GetRef, SetFlag, ForEachRef, ...) use
//     plain loads and stores. The runtime is stop-the-world, so the mutator
//     never runs while a collection does.
//   - Sequential collection phases (ownership pre-phase, PostMark merge,
//     sweep, the Workers==1 marker): also plain access. A parallel mark
//     joins its workers through a sync.WaitGroup before any of these run,
//     which establishes the happens-before edge that makes the workers'
//     atomic header writes visible to subsequent plain reads.
//   - Parallel mark workers: every header access MUST go through this
//     file's atomic API. Multiple workers race to claim the same child
//     (ClaimMark) and to set dedup flags on it (OrFlags), so a plain
//     read-modify-write like SetFlag or ClearFlag would be a data race —
//     and worse, could lose a concurrent mark bit.
//   - Field words stay plain even during a parallel mark: an object's
//     fields are only read by the worker that claimed it (exactly one
//     worker wins the mark-bit CAS and scans the object), and only written
//     by that same worker (force-true severing clears a slot of the object
//     it is currently scanning). No field word is ever accessed by two
//     workers.
//
// Everything a worker needs from a child — mark bit, assertion flags,
// TypeID — comes out of the single atomic Or performed by ClaimMark, which
// preserves the paper's argument that per-edge checks piggyback on the one
// header load the tracer does anyway (§2.3.1).

// AtomicHeader atomically loads the header word of the object at a.
func (s *Space) AtomicHeader(a Addr) uint64 {
	return atomic.LoadUint64(&s.words[a.word()])
}

// AtomicFlags atomically loads the flag byte of the object at a.
func (s *Space) AtomicFlags(a Addr) Flag {
	return Flag(atomic.LoadUint64(&s.words[a.word()]) & flagMask)
}

// ClaimMark atomically sets the mark bit of the object at a and returns the
// header word as it was *before* the claim, plus whether this caller won
// (the bit was previously clear). Exactly one of any number of racing
// claimers wins; the old header gives the winner the object's pre-mark
// flags and TypeID without a second load.
func (s *Space) ClaimMark(a Addr) (old uint64, claimed bool) {
	p := &s.words[a.word()]
	for {
		old = atomic.LoadUint64(p)
		if old&uint64(FlagMark) != 0 {
			return old, false
		}
		if atomic.CompareAndSwapUint64(p, old, old|uint64(FlagMark)) {
			return old, true
		}
	}
}

// OrFlags atomically sets the given flags on the object at a and returns
// the flag byte as it was before. Racing callers see distinct "before"
// values for the bit that flipped, so it doubles as a once-per-object
// election: the caller that observes the bit clear is the unique winner.
func (s *Space) OrFlags(a Addr, f Flag) Flag {
	p := &s.words[a.word()]
	for {
		old := atomic.LoadUint64(p)
		if old&uint64(f) == uint64(f) {
			return Flag(old & flagMask)
		}
		if atomic.CompareAndSwapUint64(p, old, old|uint64(f)) {
			return Flag(old & flagMask)
		}
	}
}

// AndNotFlags atomically clears the given flags on the object at a.
func (s *Space) AndNotFlags(a Addr, f Flag) {
	p := &s.words[a.word()]
	for {
		old := atomic.LoadUint64(p)
		if old&uint64(f) == 0 {
			return
		}
		if atomic.CompareAndSwapUint64(p, old, old&^uint64(f)) {
			return
		}
	}
}

// HeaderFlags extracts the flag byte from a header word (as returned by
// AtomicHeader or ClaimMark).
func HeaderFlags(h uint64) Flag { return Flag(h & flagMask) }

// HeaderTypeID extracts the TypeID from a header word.
func HeaderTypeID(h uint64) TypeID { return headerType(h) }

// ForEachRefAtomic is ForEachRef for parallel mark workers: the header word
// is loaded atomically (other workers may be Or-ing flag bits into it
// concurrently), while the field words are read plainly under the
// single-scanner rule documented above.
func (s *Space) ForEachRefAtomic(a Addr, fn func(slot int, target Addr)) {
	h := atomic.LoadUint64(&s.words[a.word()])
	ti := s.reg.Info(headerType(h))
	switch ti.Kind {
	case KindObject:
		w := a.word()
		for _, off := range ti.RefOffsets {
			if t := Addr(s.words[w+uint32(off)]); t != Nil {
				fn(int(off)-1, t)
			}
		}
	case KindRefArray:
		w := a.word()
		n := headerLen(h)
		for i := 0; i < n; i++ {
			if t := Addr(s.words[w+uint32(1+i)]); t != Nil {
				fn(i, t)
			}
		}
	}
}

// ClearRefSlotUnchecked stores nil into the given reference slot without
// field validation or the write barrier. Parallel mark workers use it to
// sever edges of the object they are scanning: the slot index came from
// ForEachRefAtomic a moment ago, and the validating re-read of the header
// that ClearRefSlot performs would race with concurrent mark-bit claims.
func (s *Space) ClearRefSlotUnchecked(a Addr, slot int) {
	s.words[a.word()+uint32(1+slot)] = 0
}
