package heap

// Object header layout. Every object starts with a single header word:
//
//	bits  0..7   flag bits (mark, dead, unshared, owned, ...)
//	bits  8..31  TypeID (24 bits)
//	bits 32..63  array length (arrays only)
//
// The flag bits are the "spare bits in the object header" the paper uses to
// record assert-dead and assert-unshared marks with zero space overhead
// (§2.3.1, §2.5.1). The collector's mark bit lives alongside them.
const (
	flagBits   = 8
	typeIDBits = 24
	maxTypeID  = 1<<typeIDBits - 1

	typeIDShift = flagBits
	lengthShift = flagBits + typeIDBits
)

// Flag is a header flag bit.
type Flag uint64

// Header flags.
const (
	// FlagMark is the collector's mark bit.
	FlagMark Flag = 1 << 0
	// FlagDead records an assert-dead on this object: it must be unreachable
	// at the next collection.
	FlagDead Flag = 1 << 1
	// FlagUnshared records an assert-unshared: at most one incoming pointer.
	FlagUnshared Flag = 1 << 2
	// FlagOwned is set during the ownership phase when an ownee is reached
	// from its asserted owner; cleared before each collection.
	FlagOwned Flag = 1 << 3
	// FlagOwnee marks an object registered as an ownee of some owner, so the
	// tracer can truncate scans and validate ownership without a map lookup.
	FlagOwnee Flag = 1 << 4
	// FlagOwner marks an object registered as an owner.
	FlagOwner Flag = 1 << 5
	// FlagRemembered marks a mature object recorded in the generational
	// remembered set (generational mode only), so it is recorded once.
	FlagRemembered Flag = 1 << 6

	flagMask = 1<<flagBits - 1
)

// AssertFlags are the header bits that make an object interesting to the
// assertion engine at trace time. The collector tests them inline (one mask
// on the already-loaded header word) and only calls into the engine when one
// is set — the paper's point that the flag checks ride on header reads the
// tracer performs anyway.
const AssertFlags = FlagDead | FlagUnshared | FlagOwnee

// makeHeader builds a header word for a fresh object.
func makeHeader(t TypeID, arrayLen int) uint64 {
	return uint64(t)<<typeIDShift | uint64(arrayLen)<<lengthShift
}

func headerType(h uint64) TypeID { return TypeID(h >> typeIDShift & maxTypeID) }
func headerLen(h uint64) int     { return int(h >> lengthShift) }

// TypeOf returns the type of the object at a.
func (s *Space) TypeOf(a Addr) TypeID { return headerType(s.words[a.word()]) }

// ArrayLen returns the array length stored in the header of the object at a.
// For non-array objects it returns 0.
func (s *Space) ArrayLen(a Addr) int { return headerLen(s.words[a.word()]) }

// HasFlag reports whether the object at a has the given header flag set.
func (s *Space) HasFlag(a Addr, f Flag) bool { return s.words[a.word()]&uint64(f) != 0 }

// SetFlag sets a header flag on the object at a.
func (s *Space) SetFlag(a Addr, f Flag) { s.words[a.word()] |= uint64(f) }

// ClearFlag clears a header flag on the object at a.
func (s *Space) ClearFlag(a Addr, f Flag) { s.words[a.word()] &^= uint64(f) }

// Marked reports whether the object's mark bit is set.
func (s *Space) Marked(a Addr) bool { return s.HasFlag(a, FlagMark) }

// SetMark sets the object's mark bit.
func (s *Space) SetMark(a Addr) { s.SetFlag(a, FlagMark) }

// ClearMark clears the object's mark bit.
func (s *Space) ClearMark(a Addr) { s.ClearFlag(a, FlagMark) }
