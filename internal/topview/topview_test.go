package topview

import (
	"strings"
	"testing"

	"gcassert/internal/telemetry"
)

func sampleEvent(seq uint64, words uint64) *telemetry.Event {
	return &telemetry.Event{
		Seq:           seq,
		Reason:        "alloc-failure",
		TotalNs:       1_500_000,
		ObjectsLive:   1234,
		ObjectsFreed:  567,
		Trigger:       "heap exhausted at 93.1% occupancy",
		OccupancyPct:  93.1,
		AllocRateWps:  250_000,
		TriggerThread: "worker-1",
		Costs: []telemetry.AssertCost{
			{Kind: "assert-dead", Checks: 12, Ns: 4000},
			{Kind: "assert-unshared", Checks: 40, Ns: 9000},
		},
		Threads: []telemetry.ThreadAlloc{
			{Name: "main", Objects: 100, Words: words},
			{Name: "worker-1", Objects: 900, Words: words * 9},
		},
	}
}

func TestModelRender(t *testing.T) {
	m := New()
	var empty strings.Builder
	m.Render(&empty)
	if !strings.Contains(empty.String(), "waiting for GC events") {
		t.Fatalf("empty render = %q", empty.String())
	}

	m.Feed(sampleEvent(3, 1000))
	m.Feed(sampleEvent(4, 2000))
	var out strings.Builder
	m.Render(&out)
	s := out.String()
	for _, want := range []string{
		"gc #5",                // last seq + 1
		"(2 collections seen)", // events fed
		"93.1%",                // occupancy
		"[",                    // occupancy bar
		"heap exhausted",       // trigger line
		"top allocator: worker-1",
		"assert-dead",
		"assert-unshared",
		"main",
		"worker-1",
		"250.0k words/s",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
	// Sparkline should hold one rune per fed pause.
	if !strings.ContainsAny(s, "▁▂▃▄▅▆▇█") {
		t.Fatalf("render missing pause sparkline:\n%s", s)
	}
}

func TestFeedJSONRejectsGarbage(t *testing.T) {
	m := New()
	if err := m.FeedJSON([]byte("{nope")); err == nil {
		t.Fatal("no error on malformed frame")
	}
	if m.Events() != 0 {
		t.Fatal("malformed frame counted as an event")
	}
}

// TestThreadDeltas pins the per-interval rate column: the second frame's
// delta is the growth since the first, not the lifetime total.
func TestThreadDeltas(t *testing.T) {
	m := New()
	m.Feed(sampleEvent(0, 1000))
	m.Feed(sampleEvent(1, 1500))
	for _, row := range m.threads {
		if row.name == "main" && row.deltaWords != 500 {
			t.Fatalf("main delta = %d words, want 500", row.deltaWords)
		}
	}
}

func TestBarClamps(t *testing.T) {
	if got := bar(-5, 10); got != "[..........]" {
		t.Fatalf("bar(-5) = %q", got)
	}
	if got := bar(250, 10); got != "[##########]" {
		t.Fatalf("bar(250) = %q", got)
	}
}
