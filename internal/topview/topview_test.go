package topview

import (
	"fmt"
	"strings"
	"testing"

	"gcassert/internal/slo"
	"gcassert/internal/telemetry"
)

func sampleEvent(seq uint64, words uint64) *telemetry.Event {
	return &telemetry.Event{
		Seq:           seq,
		Reason:        "alloc-failure",
		TotalNs:       1_500_000,
		ObjectsLive:   1234,
		ObjectsFreed:  567,
		Trigger:       "heap exhausted at 93.1% occupancy",
		OccupancyPct:  93.1,
		AllocRateWps:  250_000,
		TriggerThread: "worker-1",
		Costs: []telemetry.AssertCost{
			{Kind: "assert-dead", Checks: 12, Ns: 4000},
			{Kind: "assert-unshared", Checks: 40, Ns: 9000},
		},
		Threads: []telemetry.ThreadAlloc{
			{Name: "main", Objects: 100, Words: words},
			{Name: "worker-1", Objects: 900, Words: words * 9},
		},
	}
}

func TestModelRender(t *testing.T) {
	m := New()
	var empty strings.Builder
	m.Render(&empty)
	if !strings.Contains(empty.String(), "waiting for GC events") {
		t.Fatalf("empty render = %q", empty.String())
	}

	m.Feed(sampleEvent(3, 1000))
	m.Feed(sampleEvent(4, 2000))
	var out strings.Builder
	m.Render(&out)
	s := out.String()
	for _, want := range []string{
		"gc #5",                // last seq + 1
		"(2 collections seen)", // events fed
		"93.1%",                // occupancy
		"[",                    // occupancy bar
		"heap exhausted",       // trigger line
		"top allocator: worker-1",
		"assert-dead",
		"assert-unshared",
		"main",
		"worker-1",
		"250.0k words/s",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
	// Sparkline should hold one rune per fed pause.
	if !strings.ContainsAny(s, "▁▂▃▄▅▆▇█") {
		t.Fatalf("render missing pause sparkline:\n%s", s)
	}
}

func TestFeedJSONRejectsGarbage(t *testing.T) {
	m := New()
	if err := m.FeedJSON([]byte("{nope")); err == nil {
		t.Fatal("no error on malformed frame")
	}
	if m.Events() != 0 {
		t.Fatal("malformed frame counted as an event")
	}
}

// TestThreadDeltas pins the per-interval rate column: the second frame's
// delta is the growth since the first, not the lifetime total.
func TestThreadDeltas(t *testing.T) {
	m := New()
	m.Feed(sampleEvent(0, 1000))
	m.Feed(sampleEvent(1, 1500))
	for _, row := range m.threads {
		if row.name == "main" && row.deltaWords != 500 {
			t.Fatalf("main delta = %d words, want 500", row.deltaWords)
		}
	}
}

// TestAlertsPane pins the SLO overlay: transitions update rules in place,
// firing rows sort above pending and resolved ones, and the pane renders
// with or without GC events.
func TestAlertsPane(t *testing.T) {
	m := New()
	m.FeedAlert(&slo.AlertEvent{
		Tenant: "steady", Objective: "availability", Severity: "fast",
		State: "pending", Prev: "ok", BurnShort: 11, Threshold: 10, BudgetRemainingRatio: 0.8,
	})
	m.FeedAlert(&slo.AlertEvent{
		Tenant: "leaky", Objective: "violation_rate", Severity: "fast",
		State: "pending", Prev: "ok", BurnShort: 12, Threshold: 10, BudgetRemainingRatio: 0.5,
	})
	m.FeedAlert(&slo.AlertEvent{
		Tenant: "leaky", Objective: "violation_rate", Severity: "fast",
		State: "firing", Prev: "pending", BurnShort: 66.7, Threshold: 10, BudgetRemainingRatio: 0,
	})
	if m.Alerts() != 3 {
		t.Fatalf("alerts fed = %d, want 3", m.Alerts())
	}
	if len(m.alerts) != 2 {
		t.Fatalf("alert rows = %d, want 2 (second leaky transition updates in place)", len(m.alerts))
	}

	// Pane renders even before any GC event arrives.
	var out strings.Builder
	m.Render(&out)
	s := out.String()
	for _, want := range []string{"slo alerts (3 transitions)", "firing", "leaky", "violation_rate", "66.7x", "steady", "pending"} {
		if !strings.Contains(s, want) {
			t.Fatalf("alerts pane missing %q:\n%s", want, s)
		}
	}
	if strings.Index(s, "leaky") > strings.Index(s, "steady") {
		t.Fatalf("firing row not sorted above pending:\n%s", s)
	}

	// And below the dashboard once events flow.
	m.Feed(sampleEvent(0, 1000))
	out.Reset()
	m.Render(&out)
	if s := out.String(); !strings.Contains(s, "slo alerts") || !strings.Contains(s, "gc #1") {
		t.Fatalf("combined render missing a pane:\n%s", s)
	}
}

func TestAlertEviction(t *testing.T) {
	m := New()
	for i := 0; i < alertCap; i++ {
		m.FeedAlert(&slo.AlertEvent{
			Tenant: fmt.Sprintf("t%02d", i), Objective: "availability",
			Severity: "fast", State: "firing",
		})
	}
	// Resolve one rule, then overflow: the resolved row goes first.
	m.FeedAlert(&slo.AlertEvent{Tenant: "t05", Objective: "availability", Severity: "fast", State: "ok"})
	m.FeedAlert(&slo.AlertEvent{Tenant: "fresh", Objective: "availability", Severity: "fast", State: "pending"})
	if len(m.alerts) != alertCap {
		t.Fatalf("rows = %d, want the %d cap", len(m.alerts), alertCap)
	}
	for i := range m.alerts {
		if m.alerts[i].tenant == "t05" {
			t.Fatal("resolved row survived eviction")
		}
	}
}

func TestBarClamps(t *testing.T) {
	if got := bar(-5, 10); got != "[..........]" {
		t.Fatalf("bar(-5) = %q", got)
	}
	if got := bar(250, 10); got != "[##########]" {
		t.Fatalf("bar(250) = %q", got)
	}
}
