// Package topview is the render model behind cmd/gctop and `mjrun -top`: it
// folds a stream of telemetry GC events into a terminal dashboard frame —
// heap-occupancy bar, pause sparkline, per-kind assertion cost table, and
// per-thread allocation rates. The model is transport-agnostic: feed it
// decoded events (in-process subscribers) or raw SSE JSON frames (cmd/gctop
// over /debug/gcassert/live) and render whenever a new frame should appear.
// An optional second feed (FeedAlert, from a gcassertd /alerts stream)
// overlays per-tenant SLO burn-rate alerts as their own pane.
package topview

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"gcassert/internal/slo"
	"gcassert/internal/telemetry"
)

// sparkCap bounds the pause history behind the sparkline.
const sparkCap = 48

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// alertCap bounds how many alert rules the alerts pane tracks; beyond it,
// resolved rules are evicted first.
const alertCap = 32

// alertRow tracks one (tenant, objective, severity) rule's latest observed
// transition from the /alerts feed.
type alertRow struct {
	tenant    string
	objective string
	severity  string
	state     string
	burn      float64
	threshold float64
	remaining float64
}

// threadRow tracks one mutator thread's allocation counters across frames so
// the dashboard can show a per-interval rate, not just lifetime totals.
type threadRow struct {
	name       string
	objects    uint64
	words      uint64
	prevWords  uint64
	deltaWords uint64
}

// Model accumulates fed events into the current dashboard state. Not
// goroutine-safe: feed and render from one goroutine.
type Model struct {
	events   uint64
	last     telemetry.Event
	pauses   []int64 // recent TotalNs, oldest first
	costNs   map[string]int64
	costN    map[string]uint64
	gcNs     int64
	threads  []threadRow
	firstSeq uint64
	alerts   []alertRow
	alertsIn uint64
}

// New creates an empty model.
func New() *Model {
	return &Model{
		costNs: make(map[string]int64),
		costN:  make(map[string]uint64),
	}
}

// FeedJSON decodes one JSON-encoded telemetry event (an SSE `data:` payload)
// and feeds it.
func (m *Model) FeedJSON(frame []byte) error {
	var ev telemetry.Event
	if err := json.Unmarshal(frame, &ev); err != nil {
		return fmt.Errorf("topview: bad event frame: %w", err)
	}
	m.Feed(&ev)
	return nil
}

// Feed folds one completed-collection event into the model.
func (m *Model) Feed(ev *telemetry.Event) {
	if m.events == 0 {
		m.firstSeq = ev.Seq
	}
	m.events++
	m.last = *ev
	if len(m.pauses) == sparkCap {
		copy(m.pauses, m.pauses[1:])
		m.pauses = m.pauses[:sparkCap-1]
	}
	m.pauses = append(m.pauses, ev.TotalNs)
	m.gcNs += ev.TotalNs
	for _, c := range ev.Costs {
		m.costNs[c.Kind] += c.Ns
		m.costN[c.Kind] += c.Checks
	}
	m.foldThreads(ev.Threads)
}

// foldThreads merges the event's cumulative per-thread counters, computing
// the since-last-frame delta per thread.
func (m *Model) foldThreads(ts []telemetry.ThreadAlloc) {
	for _, t := range ts {
		i := -1
		for j := range m.threads {
			if m.threads[j].name == t.Name {
				i = j
				break
			}
		}
		if i < 0 {
			m.threads = append(m.threads, threadRow{name: t.Name})
			i = len(m.threads) - 1
		}
		row := &m.threads[i]
		row.prevWords = row.words
		row.deltaWords = t.Words - row.words
		row.objects, row.words = t.Objects, t.Words
	}
}

// FeedAlertJSON decodes one JSON-encoded SLO alert transition (a gcassertd
// /alerts SSE `data:` payload) and feeds it.
func (m *Model) FeedAlertJSON(frame []byte) error {
	var ev slo.AlertEvent
	if err := json.Unmarshal(frame, &ev); err != nil {
		return fmt.Errorf("topview: bad alert frame: %w", err)
	}
	m.FeedAlert(&ev)
	return nil
}

// FeedAlert folds one SLO alert transition into the alerts pane: the row
// for that (tenant, objective, severity) rule takes the transition's new
// state and burn figures.
func (m *Model) FeedAlert(ev *slo.AlertEvent) {
	m.alertsIn++
	i := -1
	for j := range m.alerts {
		r := &m.alerts[j]
		if r.tenant == ev.Tenant && r.objective == ev.Objective && r.severity == ev.Severity {
			i = j
			break
		}
	}
	if i < 0 {
		if len(m.alerts) >= alertCap {
			m.evictAlert()
		}
		m.alerts = append(m.alerts, alertRow{
			tenant: ev.Tenant, objective: ev.Objective, severity: ev.Severity,
		})
		i = len(m.alerts) - 1
	}
	r := &m.alerts[i]
	r.state, r.burn, r.threshold, r.remaining =
		ev.State, ev.BurnShort, ev.Threshold, ev.BudgetRemainingRatio
}

// evictAlert drops one row to make room: the first resolved rule, or the
// oldest row when everything is still alight.
func (m *Model) evictAlert() {
	for j := range m.alerts {
		if m.alerts[j].state == "ok" {
			m.alerts = append(m.alerts[:j], m.alerts[j+1:]...)
			return
		}
	}
	m.alerts = m.alerts[1:]
}

// Events returns how many events have been fed.
func (m *Model) Events() uint64 { return m.events }

// Alerts returns how many alert transitions have been fed.
func (m *Model) Alerts() uint64 { return m.alertsIn }

// sparkline renders the pause history, scaled to its own max.
func (m *Model) sparkline() string {
	if len(m.pauses) == 0 {
		return ""
	}
	var max int64 = 1
	for _, p := range m.pauses {
		if p > max {
			max = p
		}
	}
	var b strings.Builder
	for _, p := range m.pauses {
		i := int(p * int64(len(sparkRunes)-1) / max)
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// bar renders a [####....] occupancy gauge of the given width.
func bar(pct float64, width int) string {
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	fill := int(pct*float64(width)/100 + 0.5)
	return "[" + strings.Repeat("#", fill) + strings.Repeat(".", width-fill) + "]"
}

// Render writes the current dashboard frame. It never clears the screen —
// callers own cursor control (cmd/gctop emits the ANSI clear, tests and
// `mjrun -top` may not want one).
func (m *Model) Render(w io.Writer) {
	if m.events == 0 {
		fmt.Fprintln(w, "gctop: waiting for GC events...")
		m.renderAlerts(w)
		return
	}
	e := &m.last
	fmt.Fprintf(w, "gctop — gc #%d  (%d collections seen)\n", e.Seq+1, m.events)
	fmt.Fprintf(w, "occupancy %s %5.1f%%   alloc rate %s\n",
		bar(e.OccupancyPct, 30), e.OccupancyPct, rate(e.AllocRateWps))
	fmt.Fprintf(w, "pause %-48s last %v\n", m.sparkline(),
		time.Duration(e.TotalNs).Round(time.Microsecond))
	if e.Trigger != "" {
		fmt.Fprintf(w, "trigger: %s", e.Trigger)
		if e.TriggerThread != "" {
			fmt.Fprintf(w, "  [top allocator: %s]", e.TriggerThread)
		}
		fmt.Fprintln(w)
	} else {
		fmt.Fprintf(w, "trigger: %s\n", e.Reason)
	}
	fmt.Fprintf(w, "heap: %d live, %d freed last cycle\n", e.ObjectsLive, e.ObjectsFreed)

	if len(m.costNs) > 0 {
		fmt.Fprintf(w, "\n%-22s %12s %12s %7s\n", "assertion kind", "checks", "time", "% GC")
		for _, c := range e.Costs { // event order is the stable kind order
			totNs, totN := m.costNs[c.Kind], m.costN[c.Kind]
			if totN == 0 && totNs == 0 {
				continue
			}
			pct := 0.0
			if m.gcNs > 0 {
				pct = 100 * float64(totNs) / float64(m.gcNs)
			}
			fmt.Fprintf(w, "%-22s %12d %12v %6.2f%%\n",
				c.Kind, totN, time.Duration(totNs).Round(time.Microsecond), pct)
		}
	}
	if len(m.threads) > 0 {
		fmt.Fprintf(w, "\n%-16s %12s %14s %14s\n", "thread", "objects", "words", "Δwords/gc")
		for i := range m.threads {
			t := &m.threads[i]
			fmt.Fprintf(w, "%-16s %12d %14d %14d\n", t.name, t.objects, t.words, t.deltaWords)
		}
	}
	m.renderAlerts(w)
}

// alertStateRank orders the alerts pane: firing above pending above
// resolved.
func alertStateRank(s string) int {
	switch s {
	case "firing":
		return 2
	case "pending":
		return 1
	}
	return 0
}

// renderAlerts writes the SLO alerts pane when an alert feed is attached
// and has seen at least one transition.
func (m *Model) renderAlerts(w io.Writer) {
	if len(m.alerts) == 0 {
		return
	}
	rows := append([]alertRow(nil), m.alerts...)
	sort.SliceStable(rows, func(i, j int) bool {
		if ri, rj := alertStateRank(rows[i].state), alertStateRank(rows[j].state); ri != rj {
			return ri > rj
		}
		if rows[i].burn != rows[j].burn {
			return rows[i].burn > rows[j].burn
		}
		return rows[i].tenant < rows[j].tenant
	})
	fmt.Fprintf(w, "\nslo alerts (%d transitions)\n", m.alertsIn)
	fmt.Fprintf(w, "%-8s %-5s %-16s %-18s %14s %8s\n",
		"state", "sev", "tenant", "objective", "burn", "budget")
	for i := range rows {
		r := &rows[i]
		fmt.Fprintf(w, "%-8s %-5s %-16s %-18s %6.1fx /%5.1fx %7.0f%%\n",
			r.state, r.severity, r.tenant, r.objective, r.burn, r.threshold, 100*r.remaining)
	}
}

// rate formats a words/second EWMA compactly.
func rate(wps float64) string {
	switch {
	case wps <= 0:
		return "n/a"
	case wps >= 1e6:
		return fmt.Sprintf("%.1fM words/s", wps/1e6)
	case wps >= 1e3:
		return fmt.Sprintf("%.1fk words/s", wps/1e3)
	default:
		return fmt.Sprintf("%.0f words/s", wps)
	}
}
