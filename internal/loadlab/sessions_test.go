package loadlab

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gcassert/internal/stats"
)

func TestLogHistMergeMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, union stats.LogHist
	for i := 0; i < 2000; i++ {
		d := time.Duration(rng.Int63n(int64(20 * time.Millisecond)))
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
		union.Observe(d)
	}
	var merged stats.LogHist
	merged.Merge(&a)
	merged.Merge(&b)
	if merged.Count() != union.Count() || merged.Sum() != union.Sum() {
		t.Fatalf("merge count/sum = %d/%v, want %d/%v",
			merged.Count(), merged.Sum(), union.Count(), union.Sum())
	}
	if merged.Min() != union.Min() || merged.Max() != union.Max() {
		t.Errorf("merge min/max = %v/%v, want %v/%v",
			merged.Min(), merged.Max(), union.Min(), union.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if got, want := merged.Quantile(q), union.Quantile(q); got != want {
			t.Errorf("q%v: merged %v != union %v", q, got, want)
		}
	}
	// Merging an empty histogram is a no-op (notably for Min).
	before := merged.Min()
	var empty stats.LogHist
	merged.Merge(&empty)
	if merged.Min() != before {
		t.Errorf("empty merge disturbed min: %v -> %v", before, merged.Min())
	}
}

func TestRunSessionsAggregates(t *testing.T) {
	const sessions, requests = 4, 20
	var calls [sessions][]int
	m, err := RunSessions(Options{RPS: 2000, Requests: requests, Capture: true},
		sessions, func(s, seq int) { calls[s] = append(calls[s], seq) })
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != sessions*requests {
		t.Errorf("total requests = %d, want %d", m.Requests, sessions*requests)
	}
	if len(m.Sessions) != sessions {
		t.Fatalf("session reports = %d, want %d", len(m.Sessions), sessions)
	}
	for s, seqs := range calls {
		if len(seqs) != requests {
			t.Fatalf("session %d saw %d calls, want %d", s, len(seqs), requests)
		}
		for i, seq := range seqs {
			if seq != i {
				t.Fatalf("session %d out of order at %d: %d", s, i, seq)
			}
		}
	}
	if got := m.Latency.Count(); got != uint64(sessions*requests) {
		t.Errorf("merged latency count = %d", got)
	}
	if m.StartUnixNs == 0 || m.EndUnixNs <= m.StartUnixNs {
		t.Errorf("bad run span: [%d, %d]", m.StartUnixNs, m.EndUnixNs)
	}
	if rps := m.AchievedRPS(); rps <= 0 {
		t.Errorf("achieved RPS = %v", rps)
	}
}

func TestRunSessionsValidates(t *testing.T) {
	for _, tc := range []struct {
		name     string
		opts     Options
		sessions int
	}{
		{"zero sessions", Options{RPS: 10, Requests: 1}, 0},
		{"zero rps", Options{Requests: 1}, 1},
		{"zero requests", Options{RPS: 10}, 1},
	} {
		if _, err := RunSessions(tc.opts, tc.sessions, func(int, int) {}); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

// TestHTTPDrive exercises the wire contract against a fake drive endpoint:
// per-session accounting, failure passthrough, and transport errors.
func TestHTTPDrive(t *testing.T) {
	var hits atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		var in struct {
			Requests int `json:"requests"`
		}
		if err := json.NewDecoder(r.Body).Decode(&in); err != nil || in.Requests != 1 {
			http.Error(w, "bad drive body", http.StatusBadRequest)
			return
		}
		switch r.URL.Path {
		case "/t/leaky/drive":
			json.NewEncoder(w).Encode(map[string]any{"requests": 1, "violations": 2})
		case "/t/flaky/drive":
			http.Error(w, "tenant deleted", http.StatusNotFound)
		default:
			json.NewEncoder(w).Encode(map[string]any{"requests": 1})
		}
	}))
	defer ts.Close()

	names := []string{"steady", "leaky", "flaky"}
	d := NewHTTPDrive(nil, len(names), func(s int) string {
		return ts.URL + "/t/" + names[s] + "/drive"
	})
	m, err := RunSessions(Options{RPS: 500, Requests: 10, Capture: true}, len(names), d.Op)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 30 || hits.Load() != 30 {
		t.Fatalf("requests = %d, server hits = %d, want 30/30", m.Requests, hits.Load())
	}
	steady, leaky, flaky := d.Stats(0), d.Stats(1), d.Stats(2)
	if steady.Requests != 10 || steady.Violations != 0 || steady.Errors != 0 {
		t.Errorf("steady stats: %+v", steady)
	}
	if leaky.Requests != 10 || leaky.Violations != 20 {
		t.Errorf("leaky stats: %+v", leaky)
	}
	if flaky.Requests != 0 || flaky.Errors != 10 || flaky.LastErr == "" {
		t.Errorf("flaky stats: %+v", flaky)
	}
	tot := d.Totals()
	if tot.Requests != 20 || tot.Violations != 20 || tot.Errors != 10 {
		t.Errorf("totals: %+v", tot)
	}
}
