// Package loadlab is the latency lab: an open-loop, target-RPS load driver
// for in-process gcassert workloads, with request-level SLO reporting and
// GC-pause attribution.
//
// # Open loop
//
// The driver schedules request *arrivals* on a fixed clock — arrival i is
// due at start + i/RPS — regardless of whether earlier requests have
// finished. Requests execute serially (one replica = one service loop, the
// honest model for a stop-the-world runtime); when the service falls behind
// the schedule, later arrivals queue and their latency includes the wait.
// This is the ReqBench-style open-loop discipline: unlike a closed loop,
// which politely stops sending while the runtime is paused (coordinated
// omission), the open loop keeps the clock running, so one long GC pause
// shows up not as one slow request but as a queue of them — exactly what a
// production SLO sees.
//
// Per-request latency is recorded three ways, all on log-bucketed
// histograms (internal/stats.LogHist): end-to-end latency (completion −
// scheduled arrival), service time (completion − execution start), and
// queue wait (execution start − scheduled arrival). Raw per-request records
// are retained for attribution.
//
// # Attribution
//
// Attribute intersects each request's lifetime with the runtime's GC pause
// windows (from the telemetry event stream) and decomposes slow requests
// into run time vs stop-the-world overlap, blamed per trigger reason and —
// with cost attribution enabled — per assertion kind. The invariant behind
// it: with a serial service loop, every pause happens inside exactly one
// request's service window, so summed attributed pause time reconciles
// exactly with the telemetry pause histogram (a property test pins this).
package loadlab

import (
	"errors"
	"time"

	"gcassert/internal/stats"
)

// Options configures one load run.
type Options struct {
	// RPS is the target arrival rate, requests per second (required > 0).
	RPS float64
	// Requests is the number of arrivals to schedule (required > 0).
	Requests int
	// Capture records per-request latencies (records + histograms). With
	// Capture off the driver only paces and counts — the request path then
	// performs zero Go allocations (BenchmarkLoadlabOff pins this), so a
	// throughput-only run measures the workload, not the lab.
	Capture bool
}

// Record is one request's lifetime, in Unix nanoseconds: the scheduled
// open-loop arrival, the service start (= arrival when the service was
// idle, later when it was draining a queue), and the completion.
type Record struct {
	Seq           int   `json:"seq"`
	ArrivalUnixNs int64 `json:"arrival_unix_ns"`
	StartUnixNs   int64 `json:"start_unix_ns"`
	EndUnixNs     int64 `json:"end_unix_ns"`
}

// LatencyNs is the end-to-end latency: completion − scheduled arrival.
func (r Record) LatencyNs() int64 { return r.EndUnixNs - r.ArrivalUnixNs }

// ServiceNs is the execution time: completion − service start.
func (r Record) ServiceNs() int64 { return r.EndUnixNs - r.StartUnixNs }

// QueueNs is the open-loop queue wait: service start − scheduled arrival.
func (r Record) QueueNs() int64 { return r.StartUnixNs - r.ArrivalUnixNs }

// Report is the outcome of one load run.
type Report struct {
	// RPS and Requests echo the options.
	RPS      float64
	Requests int
	// StartUnixNs anchors the arrival schedule; EndUnixNs is taken after
	// the last completion. Attribution clips pause windows to this range.
	StartUnixNs int64
	EndUnixNs   int64
	// Records holds every request's lifetime (nil with Capture off).
	Records []Record
	// Latency, Service and Queue are the component histograms (empty with
	// Capture off).
	Latency stats.LogHist
	Service stats.LogHist
	Queue   stats.LogHist
}

// AchievedRPS is the completion rate actually sustained over the run.
func (rep *Report) AchievedRPS() float64 {
	dur := float64(rep.EndUnixNs-rep.StartUnixNs) / float64(time.Second)
	if dur <= 0 {
		return 0
	}
	return float64(rep.Requests) / dur
}

// Run drives op through one open-loop load run: op(i) is invoked once per
// scheduled arrival, in order, on the calling goroutine. op typically
// executes one guest MJ method invocation or one workload operation; it may
// trigger any number of collections. Run returns when every request has
// completed.
func Run(opts Options, op func(seq int)) (*Report, error) {
	if opts.RPS <= 0 {
		return nil, errors.New("loadlab: Options.RPS must be positive")
	}
	if opts.Requests <= 0 {
		return nil, errors.New("loadlab: Options.Requests must be positive")
	}
	intervalNs := float64(time.Second) / opts.RPS
	rep := &Report{RPS: opts.RPS, Requests: opts.Requests}
	if opts.Capture {
		rep.Records = make([]Record, opts.Requests)
	}
	rep.StartUnixNs = time.Now().UnixNano()
	for i := 0; i < opts.Requests; i++ {
		// The schedule is computed from the run start, never from the
		// previous request, so service delays cannot stretch the arrival
		// process (that would be the closed-loop bug this lab exists to
		// avoid).
		arrival := rep.StartUnixNs + int64(float64(i)*intervalNs)
		now := time.Now().UnixNano()
		for now < arrival {
			time.Sleep(time.Duration(arrival - now))
			now = time.Now().UnixNano()
		}
		op(i)
		end := time.Now().UnixNano()
		if opts.Capture {
			rep.Records[i] = Record{Seq: i, ArrivalUnixNs: arrival, StartUnixNs: now, EndUnixNs: end}
			rep.Latency.Observe(time.Duration(end - arrival))
			rep.Service.Observe(time.Duration(end - now))
			rep.Queue.Observe(time.Duration(now - arrival))
		}
	}
	rep.EndUnixNs = time.Now().UnixNano()
	return rep, nil
}
