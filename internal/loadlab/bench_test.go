package loadlab

import (
	"testing"
	"time"
)

// BenchmarkLoadlabOff is the acceptance gate for the lab's disabled mode:
// with Capture off, the per-request path (schedule arithmetic, clock reads,
// the op dispatch) performs zero Go allocations, so a throughput-only run
// adds nothing to what it measures. Self-asserted in-line like the other
// *Off gates so `go test -bench BenchmarkLoadlabOff` fails loudly on a
// regression.
func BenchmarkLoadlabOff(b *testing.B) {
	var sink int
	op := func(seq int) { sink += seq }

	// One warm run settles anything lazily initialized, then the gate: an
	// entire 100k-request capture-off run may allocate only its Report —
	// a handful of allocations total, i.e. 0 on the request path.
	const requests = 100_000
	if _, err := Run(Options{RPS: 1e9, Requests: 64}, op); err != nil {
		b.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1, func() {
		if _, err := Run(Options{RPS: 1e9, Requests: requests}, op); err != nil {
			b.Fatal(err)
		}
	})
	if perReq := allocs / requests; perReq > 0.0001 {
		b.Fatalf("capture-off request path allocates %.4f times/op, want 0 (%.0f total)", perReq, allocs)
	}

	b.ReportAllocs()
	b.ResetTimer()
	if _, err := Run(Options{RPS: 1e9, Requests: b.N}, op); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkLoadlabCapture measures the enabled-mode per-request overhead
// (records + three histogram observes) for the EXPERIMENTS table.
func BenchmarkLoadlabCapture(b *testing.B) {
	var sink int
	b.ReportAllocs()
	rep, err := Run(Options{RPS: 1e9, Requests: b.N, Capture: true}, func(seq int) { sink += seq })
	if err != nil {
		b.Fatal(err)
	}
	if rep.Latency.Count() != uint64(b.N) {
		b.Fatalf("captured %d, want %d", rep.Latency.Count(), b.N)
	}
	_ = time.Duration(sink)
}
