package loadlab

import (
	"sort"

	"gcassert/internal/telemetry"
	"gcassert/internal/trace"
)

// Attribution decomposes a load run's latency into GC stop-the-world
// overlap, computed by intersecting every pause window from the telemetry
// event stream with every request's lifetime.
//
// Service overlap is the exact, reconcilable number: with a serial service
// loop every pause nests inside exactly one request's service window, so
// ServicePauseNs equals the telemetry pause histogram's sum for the run.
// Queue overlap counts the same wall-clock pause once per *waiting* request
// it delayed — deliberately, because that is what the open-loop latency
// distribution experiences: one 10ms pause with four requests queued behind
// it costs the tail 50ms of summed latency, not 10ms.
type Attribution struct {
	// Collections is the number of pause windows inside the run; their
	// summed stop-the-world time is PauseTotalNs.
	Collections  int   `json:"collections"`
	PauseTotalNs int64 `json:"pause_total_ns"`
	// ServicePauseNs is pause time overlapping request service windows
	// (reconciles with the pause histogram); QueuePauseNs is pause time
	// overlapping open-loop queue waits, summed per delayed request.
	ServicePauseNs int64 `json:"service_pause_ns"`
	QueuePauseNs   int64 `json:"queue_pause_ns"`
	// ByReason groups the service overlap by collection trigger reason;
	// ByKind attributes it to assertion kinds via each pause's cost rows
	// (scaled by the pause's overlap share; only the measured slow-path
	// time is attributable, so the kinds sum to less than the total).
	ByReason []ReasonPause `json:"by_reason,omitempty"`
	ByKind   []KindPause   `json:"by_kind,omitempty"`
	// Slowest holds the top-K requests by end-to-end latency, each with its
	// per-pause decomposition.
	Slowest []SlowRequest `json:"slowest,omitempty"`
}

// ReasonPause is one trigger reason's share of the service overlap.
type ReasonPause struct {
	Reason string `json:"reason"`
	Pauses int    `json:"pauses"`
	Ns     int64  `json:"ns"`
}

// KindPause is one assertion kind's attributed share of the service overlap.
type KindPause struct {
	Kind string `json:"kind"`
	Ns   int64  `json:"ns"`
}

// SlowRequest is one slow request with its latency decomposition.
type SlowRequest struct {
	Record
	// ServicePauseNs and QueuePauseNs split the request's GC overlap
	// between its execution and its queue wait.
	ServicePauseNs int64 `json:"service_pause_ns"`
	QueuePauseNs   int64 `json:"queue_pause_ns"`
	// Pauses lists the individual collections that touched the request.
	Pauses []PauseHit `json:"pauses,omitempty"`
}

// PauseHit is one collection's contribution to one request's latency.
type PauseHit struct {
	// EventSeq is the collection's telemetry sequence number; Reason its
	// mechanical trigger; Trigger the explainer's one-liner (empty without
	// cost attribution).
	EventSeq uint64 `json:"event_seq"`
	Reason   string `json:"reason"`
	Trigger  string `json:"trigger,omitempty"`
	// TotalNs is the full pause; ServiceNs and QueueNs its overlap with
	// this request's service window and queue wait.
	TotalNs   int64 `json:"total_ns"`
	ServiceNs int64 `json:"service_ns"`
	QueueNs   int64 `json:"queue_ns"`
	// DominantKind names the assertion kind with the largest attributed
	// slow-path share of the pause (empty without cost attribution).
	DominantKind  string  `json:"dominant_kind,omitempty"`
	DominantShare float64 `json:"dominant_share,omitempty"`
}

// Attribute intersects the run's request records with the GC pause windows
// in events and returns the full decomposition. events may be the runtime's
// whole event stream — collections outside the run window are ignored.
// topK bounds the Slowest list (0 keeps none). The report must come from a
// Capture run; with no records the result only counts pauses.
func Attribute(rep *Report, events []telemetry.Event, topK int) *Attribution {
	at := &Attribution{}

	// Pause windows inside the run, chronological.
	var evs []telemetry.Event
	for _, ev := range events {
		s, e := ev.PauseWindow()
		if e <= rep.StartUnixNs || s >= rep.EndUnixNs {
			continue
		}
		evs = append(evs, ev)
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].StartUnixNs < evs[j].StartUnixNs })
	at.Collections = len(evs)
	for i := range evs {
		at.PauseTotalNs += evs[i].TotalNs
	}

	recs := rep.Records
	svc := make([]int64, len(recs))
	que := make([]int64, len(recs))
	reasonIdx := map[string]int{}
	kindNs := map[string]float64{}
	var kindOrder []string

	// Event-major sweep over the shared two-cursor intersection
	// (trace.IntersectPauses — the live tracer runs the identical code).
	// Records are chronological with monotone service windows and monotone
	// queue waits, so each sweep's window cursor never moves backwards.
	svcWins := make([]trace.Window, len(recs))
	queWins := make([]trace.Window, len(recs))
	for i, r := range recs {
		// Service windows: [Start, End); queue waits: [Arrival, Start).
		svcWins[i] = trace.Window{StartNs: r.StartUnixNs, EndNs: r.EndUnixNs}
		queWins[i] = trace.Window{StartNs: r.ArrivalUnixNs, EndNs: r.StartUnixNs}
	}
	evSvc := make([]int64, len(evs))
	trace.IntersectPauses(evs, svcWins, func(ei, wi int, o int64) {
		svc[wi] += o
		evSvc[ei] += o
		at.ServicePauseNs += o
	})
	// One pause can delay many queued arrivals; each delayed request counts
	// its own wait.
	trace.IntersectPauses(evs, queWins, func(ei, wi int, o int64) {
		que[wi] += o
		at.QueuePauseNs += o
	})

	// Blame: by trigger reason (full service overlap) and by assertion
	// kind (each kind's measured slow-path time, scaled by how much of
	// the pause the run's requests actually absorbed — 1.0 when nested).
	for i := range evs {
		ri, ok := reasonIdx[evs[i].Reason]
		if !ok {
			ri = len(at.ByReason)
			reasonIdx[evs[i].Reason] = ri
			at.ByReason = append(at.ByReason, ReasonPause{Reason: evs[i].Reason})
		}
		at.ByReason[ri].Pauses++
		at.ByReason[ri].Ns += evSvc[i]
		if evs[i].TotalNs > 0 {
			frac := float64(evSvc[i]) / float64(evs[i].TotalNs)
			for _, c := range evs[i].Costs {
				if _, seen := kindNs[c.Kind]; !seen {
					kindOrder = append(kindOrder, c.Kind)
				}
				kindNs[c.Kind] += frac * float64(c.Ns)
			}
		}
	}
	for _, k := range kindOrder {
		at.ByKind = append(at.ByKind, KindPause{Kind: k, Ns: int64(kindNs[k])})
	}
	sort.Slice(at.ByKind, func(i, j int) bool { return at.ByKind[i].Ns > at.ByKind[j].Ns })
	sort.Slice(at.ByReason, func(i, j int) bool { return at.ByReason[i].Ns > at.ByReason[j].Ns })

	// Slowest requests, by end-to-end latency, with per-pause detail.
	if topK > 0 && len(recs) > 0 {
		order := make([]int, len(recs))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			return recs[order[i]].LatencyNs() > recs[order[j]].LatencyNs()
		})
		if topK > len(order) {
			topK = len(order)
		}
		for _, idx := range order[:topK] {
			r := recs[idx]
			slow := SlowRequest{Record: r, ServicePauseNs: svc[idx], QueuePauseNs: que[idx]}
			// Pauses touching [Arrival, End): evs is sorted with
			// non-overlapping windows, so scan from the first whose end is
			// past the window start.
			lo := sort.Search(len(evs), func(i int) bool {
				_, e := evs[i].PauseWindow()
				return e > r.ArrivalUnixNs
			})
			for i := lo; i < len(evs) && evs[i].StartUnixNs < r.EndUnixNs; i++ {
				es, ee := evs[i].PauseWindow()
				hit := PauseHit{
					EventSeq:  evs[i].Seq,
					Reason:    evs[i].Reason,
					Trigger:   evs[i].Trigger,
					TotalNs:   evs[i].TotalNs,
					ServiceNs: trace.Overlap(r.StartUnixNs, r.EndUnixNs, es, ee),
					QueueNs:   trace.Overlap(r.ArrivalUnixNs, r.StartUnixNs, es, ee),
				}
				hit.DominantKind, hit.DominantShare = evs[i].DominantCost()
				if hit.ServiceNs > 0 || hit.QueueNs > 0 {
					slow.Pauses = append(slow.Pauses, hit)
				}
			}
			at.Slowest = append(at.Slowest, slow)
		}
	}
	return at
}
