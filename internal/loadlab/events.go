package loadlab

import "gcassert/internal/telemetry"

// EventLog is a lossless tap on a runtime's GC event stream: unlike the
// telemetry ring (bounded, evicts) and the live SSE feed (drops frames for
// slow subscribers), it retains every collection of the run, which is what
// exact pause attribution needs. It hooks telemetry.Tracer.OnRecord, so the
// append happens synchronously inside the stop-the-world pause — one slice
// append per collection, nothing on the managed heap.
type EventLog struct {
	events []telemetry.Event
}

// NewEventLog installs a lossless event tap on the tracer. Install it before
// driving load; call Close (or Tracer.OnRecord(nil)) when done.
func NewEventLog(t *telemetry.Tracer) *EventLog {
	l := &EventLog{}
	t.OnRecord(func(ev *telemetry.Event) {
		// Copy the value; the slices inside stay shared with the ring and
		// are treated as read-only by attribution.
		l.events = append(l.events, *ev)
	})
	return l
}

// Events returns every collection recorded since the tap was installed,
// oldest first. Call only after load has stopped (the tap appends inside
// collections).
func (l *EventLog) Events() []telemetry.Event { return l.events }
