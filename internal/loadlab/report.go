package loadlab

import (
	"fmt"
	"io"
	"time"

	"gcassert/internal/stats"
)

// fmtNs renders a nanosecond quantity for the report (10µs resolution —
// SLO numbers, not microbenchmarks).
func fmtNs(ns int64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}

func writeTail(w io.Writer, label string, h *stats.LogHist) {
	p50, p99, p999, max := h.Tail()
	fmt.Fprintf(w, "%-9s p50 %-10v p99 %-10v p999 %-10v max %v\n",
		label, p50.Round(10*time.Microsecond), p99.Round(10*time.Microsecond),
		p999.Round(10*time.Microsecond), max.Round(10*time.Microsecond))
}

// WriteReport renders the human-readable latency report: the SLO quantiles
// per component, then the GC attribution (at may be nil for a capture-off
// run).
func WriteReport(w io.Writer, rep *Report, at *Attribution) {
	fmt.Fprintf(w, "requests: %d @ %g rps target, %.1f rps achieved\n",
		rep.Requests, rep.RPS, rep.AchievedRPS())
	if rep.Records == nil {
		fmt.Fprintln(w, "latency:  not captured (capture disabled)")
		return
	}
	writeTail(w, "latency:", &rep.Latency)
	writeTail(w, "service:", &rep.Service)
	writeTail(w, "queue:", &rep.Queue)
	if at == nil {
		return
	}
	fmt.Fprintf(w, "GC:       %d pauses, %s stop-the-world inside the run; %s hit request service, %s hit queued arrivals\n",
		at.Collections, fmtNs(at.PauseTotalNs), fmtNs(at.ServicePauseNs), fmtNs(at.QueuePauseNs))
	for i, r := range at.ByReason {
		label := "by trigger:"
		if i > 0 {
			label = ""
		}
		fmt.Fprintf(w, "  %-11s %-16s %8s over %d pause(s)\n", label, r.Reason, fmtNs(r.Ns), r.Pauses)
	}
	for i, k := range at.ByKind {
		label := "by kind:"
		if i > 0 {
			label = ""
		}
		fmt.Fprintf(w, "  %-11s %-16s %8s\n", label, k.Kind, fmtNs(k.Ns))
	}
	if len(at.Slowest) > 0 {
		fmt.Fprintln(w, "slowest requests:")
		for _, s := range at.Slowest {
			fmt.Fprintf(w, "  #%-6d %s latency (%s service + %s queued), GC overlap %s service + %s queued\n",
				s.Seq, fmtNs(s.LatencyNs()), fmtNs(s.ServiceNs()), fmtNs(s.QueueNs()),
				fmtNs(s.ServicePauseNs), fmtNs(s.QueuePauseNs))
			for _, h := range s.Pauses {
				line := fmt.Sprintf("          gc %d (%s): %s pause, %s in-service, %s queued",
					h.EventSeq, h.Reason, fmtNs(h.TotalNs), fmtNs(h.ServiceNs), fmtNs(h.QueueNs))
				if h.DominantKind != "" {
					line += fmt.Sprintf(", dominated by %s (%.0f%%)", h.DominantKind, 100*h.DominantShare)
				}
				fmt.Fprintln(w, line)
				if h.Trigger != "" {
					fmt.Fprintf(w, "            trigger: %s\n", h.Trigger)
				}
			}
		}
	}
}
