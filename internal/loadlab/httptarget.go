package loadlab

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// HTTPDrive adapts a remote drive endpoint (gcassertd's
// POST /tenants/{id}/drive, or anything speaking the same wire contract) to
// a RunSessions op: each invocation POSTs one single-request batch and
// accounts the response. The wire contract is deliberately tiny —
//
//	request:  {"requests": 1}
//	response: {"requests": N, "failures": F, "violations": V}
//
// — so the driver depends on the shape of the API, not on the service
// package. Violations and failures are accumulated per session with
// atomics: Op is called concurrently across sessions, serially within one.
type HTTPDrive struct {
	client *http.Client
	url    func(session int) string
	state  []httpSessionState
}

// httpSessionState accumulates one session's drive outcomes.
type httpSessionState struct {
	requests   atomic.Uint64
	violations atomic.Uint64
	failures   atomic.Uint64
	errors     atomic.Uint64
	lastErr    atomic.Pointer[string]
}

// HTTPDriveStats is one session's accumulated drive outcome.
type HTTPDriveStats struct {
	// Requests counts guest requests the server reports having run;
	// Failures those the server reports failing (guest error, OOM, halt).
	Requests uint64 `json:"requests"`
	Failures uint64 `json:"failures"`
	// Violations counts assertion violations the server attributed to this
	// session's batches.
	Violations uint64 `json:"violations"`
	// Errors counts transport-level failures (connection refused, non-2xx,
	// bad response body); LastErr is the most recent one.
	Errors  uint64 `json:"errors"`
	LastErr string `json:"last_err,omitempty"`
}

// NewHTTPDrive builds a drive op over `sessions` sessions; url maps a
// session index to its drive endpoint. client may be nil (a 30s-timeout
// client is used — generous, because an open-loop driver must observe slow
// responses as latency, not convert them into transport errors).
func NewHTTPDrive(client *http.Client, sessions int, url func(session int) string) *HTTPDrive {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &HTTPDrive{client: client, url: url, state: make([]httpSessionState, sessions)}
}

// driveWire is the request/response body of the drive contract.
type driveWire struct {
	Requests   int    `json:"requests"`
	Failures   uint64 `json:"failures,omitempty"`
	Violations uint64 `json:"violations,omitempty"`
}

// Op performs one drive call for (session, seq); pass it to RunSessions.
// Transport errors are recorded, never fatal — a load run keeps slamming a
// struggling server, which is the scenario worth measuring.
func (d *HTTPDrive) Op(session, seq int) {
	st := &d.state[session]
	resp, err := d.client.Post(d.url(session), "application/json",
		bytes.NewReader([]byte(`{"requests":1}`)))
	if err != nil {
		st.fail(err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		st.fail(fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body)))
		return
	}
	var out driveWire
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		st.fail(err)
		return
	}
	st.requests.Add(uint64(out.Requests))
	st.failures.Add(out.Failures)
	st.violations.Add(out.Violations)
}

func (st *httpSessionState) fail(err error) {
	st.errors.Add(1)
	msg := err.Error()
	st.lastErr.Store(&msg)
}

// Stats returns one session's accumulated outcome.
func (d *HTTPDrive) Stats(session int) HTTPDriveStats {
	st := &d.state[session]
	out := HTTPDriveStats{
		Requests:   st.requests.Load(),
		Failures:   st.failures.Load(),
		Violations: st.violations.Load(),
		Errors:     st.errors.Load(),
	}
	if p := st.lastErr.Load(); p != nil {
		out.LastErr = *p
	}
	return out
}

// Totals sums every session's outcome.
func (d *HTTPDrive) Totals() HTTPDriveStats {
	var out HTTPDriveStats
	for i := range d.state {
		s := d.Stats(i)
		out.Requests += s.Requests
		out.Failures += s.Failures
		out.Violations += s.Violations
		out.Errors += s.Errors
		if s.LastErr != "" {
			out.LastErr = s.LastErr
		}
	}
	return out
}
