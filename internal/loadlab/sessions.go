package loadlab

import (
	"errors"
	"fmt"
	"sync"

	"gcassert/internal/stats"
)

// MultiReport aggregates many concurrent open-loop sessions: one Report per
// session plus exactly-merged component histograms, the fleet-level view a
// multi-tenant service is judged by. Session i's report is Sessions[i].
type MultiReport struct {
	// RPS echoes the per-session target rate; Sessions the session count.
	RPS      float64
	Requests int // total completed requests across all sessions
	// StartUnixNs is the earliest session start, EndUnixNs the latest
	// session end.
	StartUnixNs int64
	EndUnixNs   int64
	// Sessions holds each session's own report.
	Sessions []*Report
	// Latency, Service and Queue are the merged component histograms.
	Latency stats.LogHist
	Service stats.LogHist
	Queue   stats.LogHist
}

// AchievedRPS is the aggregate completion rate actually sustained: total
// requests over the wall-clock span of the whole run.
func (m *MultiReport) AchievedRPS() float64 {
	dur := float64(m.EndUnixNs - m.StartUnixNs)
	if dur <= 0 {
		return 0
	}
	return float64(m.Requests) / (dur / 1e9)
}

// RunSessions drives op through `sessions` concurrent open-loop load runs.
// Each session is its own independent open loop — its own goroutine, its
// own fixed arrival schedule at opts.RPS, its own Report — so the aggregate
// arrival rate is sessions × opts.RPS. op(session, seq) must be safe for
// concurrent calls with distinct session values; calls within one session
// are serial, in seq order (the per-session service-loop discipline Run
// documents). This is the client shape for a multi-tenant service: one
// session per tenant, each tenant's queueing visible in its own report.
//
// Unlike the single-session Run, op here typically performs network I/O, so
// a session blocked on a slow server accumulates open-loop queue delay for
// every arrival scheduled behind the stall — exactly the SLO view.
func RunSessions(opts Options, sessions int, op func(session, seq int)) (*MultiReport, error) {
	if sessions <= 0 {
		return nil, errors.New("loadlab: RunSessions needs a positive session count")
	}
	// Validate once up front so every goroutine either runs or none do.
	if opts.RPS <= 0 {
		return nil, errors.New("loadlab: Options.RPS must be positive")
	}
	if opts.Requests <= 0 {
		return nil, errors.New("loadlab: Options.Requests must be positive")
	}

	reports := make([]*Report, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			reports[s], errs[s] = Run(opts, func(seq int) { op(s, seq) })
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("loadlab: session %d: %w", s, err)
		}
	}

	m := &MultiReport{RPS: opts.RPS, Sessions: reports}
	for _, rep := range reports {
		m.Requests += rep.Requests
		if m.StartUnixNs == 0 || rep.StartUnixNs < m.StartUnixNs {
			m.StartUnixNs = rep.StartUnixNs
		}
		if rep.EndUnixNs > m.EndUnixNs {
			m.EndUnixNs = rep.EndUnixNs
		}
		m.Latency.Merge(&rep.Latency)
		m.Service.Merge(&rep.Service)
		m.Queue.Merge(&rep.Queue)
	}
	return m, nil
}
