package loadlab

import (
	"strings"
	"testing"
	"time"

	"gcassert/internal/telemetry"
)

func TestRunValidatesOptions(t *testing.T) {
	if _, err := Run(Options{RPS: 0, Requests: 10}, func(int) {}); err == nil {
		t.Error("RPS 0 should be rejected")
	}
	if _, err := Run(Options{RPS: 100, Requests: 0}, func(int) {}); err == nil {
		t.Error("Requests 0 should be rejected")
	}
}

func TestRunOpenLoopSchedule(t *testing.T) {
	// A fast op at a modest rate: arrivals must follow the fixed schedule,
	// every request runs, and queue wait stays ~0.
	const n, rps = 40, 2000.0
	var calls int
	rep, err := Run(Options{RPS: rps, Requests: n, Capture: true}, func(seq int) {
		if seq != calls {
			t.Fatalf("op called out of order: got seq %d, want %d", seq, calls)
		}
		calls++
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != n || len(rep.Records) != n {
		t.Fatalf("ran %d requests, recorded %d, want %d", calls, len(rep.Records), n)
	}
	interval := int64(float64(time.Second) / rps)
	for i, r := range rep.Records {
		want := rep.StartUnixNs + int64(i)*interval
		if diff := r.ArrivalUnixNs - want; diff < -1 || diff > 1 {
			t.Fatalf("request %d arrival %d, want %d (fixed schedule)", i, r.ArrivalUnixNs, want)
		}
		if r.StartUnixNs < r.ArrivalUnixNs {
			t.Fatalf("request %d started before its arrival", i)
		}
		if r.EndUnixNs < r.StartUnixNs {
			t.Fatalf("request %d ended before it started", i)
		}
	}
	if got := rep.Latency.Count(); got != n {
		t.Fatalf("latency histogram holds %d observations, want %d", got, n)
	}
}

func TestRunQueueingUnderOverload(t *testing.T) {
	// Service time (1ms) exceeds the arrival interval (200µs): the open
	// loop must keep arrivals on schedule and charge the backlog to queue
	// wait — the coordinated-omission case a closed loop would hide.
	const n = 20
	rep, err := Run(Options{RPS: 5000, Requests: n, Capture: true}, func(int) {
		time.Sleep(time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Records[n-1]
	// By request n-1 the service is ~n×(1ms − 0.2ms) behind schedule.
	if q := last.QueueNs(); q < int64(5*time.Millisecond) {
		t.Errorf("last request queued %v, want ≥ 5ms under 5× overload", time.Duration(q))
	}
	if last.LatencyNs() < last.ServiceNs()+last.QueueNs() {
		t.Error("latency must cover service + queue")
	}
	// Queue wait must be monotonically growing early in an overloaded run.
	if rep.Records[10].QueueNs() <= rep.Records[2].QueueNs() {
		t.Error("queue wait should grow while overloaded")
	}
}

// synthetic events/records for attribution arithmetic, nanosecond-exact.
func mkEvent(seq uint64, start, total int64, reason string, costs ...telemetry.AssertCost) telemetry.Event {
	return telemetry.Event{Seq: seq, Reason: reason, StartUnixNs: start, TotalNs: total, Costs: costs}
}

func TestAttributeSyntheticOverlap(t *testing.T) {
	rep := &Report{
		RPS: 100, Requests: 3,
		StartUnixNs: 0, EndUnixNs: 10_000,
		Records: []Record{
			// Request 0: arrives 0, runs [0, 3000).
			{Seq: 0, ArrivalUnixNs: 0, StartUnixNs: 0, EndUnixNs: 3000},
			// Request 1: arrives 1000, queued until 3000, runs to 3900.
			{Seq: 1, ArrivalUnixNs: 1000, StartUnixNs: 3000, EndUnixNs: 3900},
			// Request 2: arrives 2000, queued until 3900, runs to 6000.
			{Seq: 2, ArrivalUnixNs: 2000, StartUnixNs: 3900, EndUnixNs: 6000},
		},
	}
	events := []telemetry.Event{
		// Pause nested in request 0's service window [1500, 2500): also
		// overlaps the queue waits of requests 1 (from 1500) and 2 (from
		// 2000).
		mkEvent(0, 1500, 1000, "alloc-failure",
			telemetry.AssertCost{Kind: "assert-ownedby", Ns: 600},
			telemetry.AssertCost{Kind: "assert-dead", Ns: 100}),
		// Pause nested in request 2's service window [4500, 4700).
		mkEvent(1, 4500, 200, "forced"),
		// Pause outside the run window entirely: ignored.
		mkEvent(2, 20_000, 500, "forced"),
	}

	at := Attribute(rep, events, 2)
	if at.Collections != 2 {
		t.Fatalf("collections = %d, want 2 (one outside the run)", at.Collections)
	}
	if at.PauseTotalNs != 1200 {
		t.Errorf("pause total = %d, want 1200", at.PauseTotalNs)
	}
	if at.ServicePauseNs != 1200 {
		t.Errorf("service overlap = %d, want 1200 (both pauses nested)", at.ServicePauseNs)
	}
	// Queue overlap: pause 0 delays request 1 for its full 1000ns and
	// request 2 for [2000, 2500) = 500ns.
	if at.QueuePauseNs != 1500 {
		t.Errorf("queue overlap = %d, want 1500", at.QueuePauseNs)
	}
	if len(at.ByReason) != 2 || at.ByReason[0].Reason != "alloc-failure" || at.ByReason[0].Ns != 1000 {
		t.Errorf("by-reason = %+v, want alloc-failure 1000ns first", at.ByReason)
	}
	// Pause 0 is fully absorbed (frac 1.0): kinds keep their measured time.
	if len(at.ByKind) != 2 || at.ByKind[0].Kind != "assert-ownedby" || at.ByKind[0].Ns != 600 {
		t.Errorf("by-kind = %+v, want assert-ownedby 600ns first", at.ByKind)
	}

	// Slowest: request 2 (latency 4000) then request 0 (3000).
	if len(at.Slowest) != 2 || at.Slowest[0].Seq != 2 || at.Slowest[1].Seq != 0 {
		t.Fatalf("slowest = %+v, want requests 2 then 0", at.Slowest)
	}
	s2 := at.Slowest[0]
	if s2.ServicePauseNs != 200 || s2.QueuePauseNs != 500 {
		t.Errorf("request 2 pause split = %d/%d, want 200 service / 500 queue", s2.ServicePauseNs, s2.QueuePauseNs)
	}
	if len(s2.Pauses) != 2 {
		t.Fatalf("request 2 pause hits = %d, want 2 (one queued, one in-service)", len(s2.Pauses))
	}
	if s2.Pauses[0].QueueNs != 500 || s2.Pauses[0].ServiceNs != 0 {
		t.Errorf("hit 0 = %+v, want 500ns queued", s2.Pauses[0])
	}
	if s2.Pauses[1].ServiceNs != 200 || s2.Pauses[1].Reason != "forced" {
		t.Errorf("hit 1 = %+v, want 200ns in-service forced", s2.Pauses[1])
	}
	s0 := at.Slowest[1]
	if len(s0.Pauses) != 1 || s0.Pauses[0].DominantKind != "assert-ownedby" {
		t.Errorf("request 0 hits = %+v, want one dominated by assert-ownedby", s0.Pauses)
	}
	if share := s0.Pauses[0].DominantShare; share < 0.85 || share > 0.86 {
		t.Errorf("dominant share = %v, want 600/700", share)
	}
}

func TestWriteReportRendersAttribution(t *testing.T) {
	rep := &Report{RPS: 100, Requests: 1, StartUnixNs: 0, EndUnixNs: int64(time.Second),
		Records: []Record{{Seq: 0, ArrivalUnixNs: 0, StartUnixNs: 0, EndUnixNs: 5_000_000}}}
	rep.Latency.Observe(5 * time.Millisecond)
	rep.Service.Observe(5 * time.Millisecond)
	rep.Queue.Observe(0)
	at := Attribute(rep, []telemetry.Event{
		mkEvent(0, 1_000_000, 3_000_000, "alloc-failure",
			telemetry.AssertCost{Kind: "assert-ownedby", Ns: 2_000_000}),
	}, 1)
	var b strings.Builder
	WriteReport(&b, rep, at)
	out := b.String()
	for _, want := range []string{"p999", "by trigger:", "alloc-failure", "by kind:", "assert-ownedby", "slowest requests:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteReportCaptureOff(t *testing.T) {
	rep := &Report{RPS: 100, Requests: 5, StartUnixNs: 0, EndUnixNs: int64(time.Second)}
	var b strings.Builder
	WriteReport(&b, rep, nil)
	if !strings.Contains(b.String(), "not captured") {
		t.Errorf("capture-off report should say so:\n%s", b.String())
	}
}
