package loadlab

import (
	"fmt"
	"testing"

	"gcassert"
)

// TestAttributionReconcilesWithPauseHistogram is the lab's acceptance
// property: drive real load on a real runtime and the summed attributed
// service-pause time must equal the telemetry pause histogram's total for
// the same run, exactly. The serial service loop guarantees every pause
// nests inside one request's service window; any drift here means the
// attribution arithmetic (or the event stream's pause windows) is wrong.
func TestAttributionReconcilesWithPauseHistogram(t *testing.T) {
	configs := []struct {
		name     string
		heap     int
		rps      float64
		requests int
		churn    int
		forced   int // force a collection every N requests (0 = never)
	}{
		{"exhaustion-only", 1 << 20, 4000, 300, 256, 0},
		{"forced-and-exhaustion", 1 << 20, 2000, 200, 128, 7},
		{"forced-only-low-rps", 16 << 20, 500, 60, 64, 5},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			vm := gcassert.New(gcassert.Options{
				HeapBytes:       cfg.heap,
				Infrastructure:  true,
				Telemetry:       true,
				CostAttribution: true,
			})
			node := vm.Define("Node", gcassert.Field{Name: "next", Ref: true})
			th := vm.NewThread("svc")
			fr := th.Push(2)

			log := NewEventLog(vm.Telemetry())
			pausesBefore := vm.Telemetry().PauseHistogram().Sum()
			if pausesBefore != 0 {
				t.Fatalf("collections before the run: %v", pausesBefore)
			}

			rep, err := Run(Options{RPS: cfg.rps, Requests: cfg.requests, Capture: true}, func(seq int) {
				// Churn: a short-lived list per request, with an assert-dead
				// on a dropped node now and then so collections carry
				// assertion work for the by-kind blame.
				fr.Set(0, gcassert.Nil)
				for j := 0; j < cfg.churn; j++ {
					n := th.New(node)
					vm.SetRef(n, 0, fr.Get(0))
					fr.Set(0, n)
				}
				if seq%13 == 0 {
					dead := th.New(node)
					fr.Set(1, dead)
					fr.Set(1, gcassert.Nil)
					vm.AssertDead(dead)
				}
				fr.Set(0, gcassert.Nil)
				if cfg.forced > 0 && seq%cfg.forced == 0 {
					vm.Collect()
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			vm.Telemetry().OnRecord(nil)

			hist := vm.Telemetry().PauseHistogram()
			if hist.Count() == 0 {
				t.Fatal("run produced no collections; property is vacuous — shrink the heap")
			}
			at := Attribute(rep, log.Events(), 5)

			if got, want := at.Collections, int(hist.Count()); got != want {
				t.Errorf("attribution saw %d collections, pause histogram %d", got, want)
			}
			if got, want := at.ServicePauseNs, hist.Sum().Nanoseconds(); got != want {
				t.Errorf("attributed service pause %d ns != pause histogram sum %d ns (diff %d)",
					got, want, got-want)
			}
			if at.PauseTotalNs != at.ServicePauseNs {
				t.Errorf("pause total %d != service overlap %d: a pause leaked outside every service window",
					at.PauseTotalNs, at.ServicePauseNs)
			}
			// The by-reason split is a partition of the same total.
			var byReason int64
			for _, r := range at.ByReason {
				byReason += r.Ns
			}
			if byReason != at.ServicePauseNs {
				t.Errorf("by-reason sums to %d, want %d", byReason, at.ServicePauseNs)
			}
			// Kind blame can only attribute measured slow-path time.
			var byKind int64
			for _, k := range at.ByKind {
				byKind += k.Ns
			}
			if byKind > at.ServicePauseNs {
				t.Errorf("by-kind sums to %d > attributed pause %d", byKind, at.ServicePauseNs)
			}
			// Per-request decomposition must bound each request's latency.
			for _, s := range at.Slowest {
				if s.ServicePauseNs > s.ServiceNs() {
					t.Errorf("request %d: service pause %d > service time %d", s.Seq, s.ServicePauseNs, s.ServiceNs())
				}
				if s.QueuePauseNs > s.QueueNs() {
					t.Errorf("request %d: queue pause %d > queue wait %d", s.Seq, s.QueuePauseNs, s.QueueNs())
				}
			}
		})
	}
}

// TestEventLogLossless pins the tap's reason to exist: every collection is
// retained even when the telemetry ring has long since evicted it.
func TestEventLogLossless(t *testing.T) {
	vm := gcassert.New(gcassert.Options{
		HeapBytes: 8 << 20, Infrastructure: true,
		Telemetry: true, TelemetryRingSize: 4, // tiny ring: evicts fast
	})
	log := NewEventLog(vm.Telemetry())
	const collections = 32
	for i := 0; i < collections; i++ {
		vm.Collect()
	}
	vm.Telemetry().OnRecord(nil)
	if got := len(log.Events()); got != collections {
		t.Fatalf("event log holds %d events, want %d (ring only holds 4)", got, collections)
	}
	if got := len(vm.Telemetry().Events()); got != 4 {
		t.Fatalf("ring snapshot holds %d, want 4 — the premise of the test", got)
	}
	for i, ev := range log.Events() {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d: tap out of order or lossy", i, ev.Seq)
		}
	}
}

func ExampleWriteReport() {
	// A capture-off run reports only pacing.
	rep := &Report{RPS: 100, Requests: 3, StartUnixNs: 0, EndUnixNs: 30_000_000}
	var at *Attribution
	WriteReport(exampleWriter{}, rep, at)
	fmt.Println("ok")
	// Output: ok
}

type exampleWriter struct{}

func (exampleWriter) Write(p []byte) (int, error) { return len(p), nil }
