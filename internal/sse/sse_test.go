package sse

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// countInc is a DropCounter double.
type countInc struct{ n atomic.Uint64 }

func (c *countInc) Inc() { c.n.Add(1) }

// TestHubSemantics is the single table-driven pin for every semantic the
// three historical hand-rolled hubs relied on. Run under -race (CI does):
// each case hammers the hub from concurrent publishers, subscribers and
// cancellers before asserting its invariant.
func TestHubSemantics(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"deliver_in_order", func(t *testing.T) {
			var h Hub
			ch, cancel, ok := h.Subscribe(16)
			if !ok {
				t.Fatal("subscribe on fresh hub refused")
			}
			defer cancel()
			for i := 0; i < 10; i++ {
				h.Publish([]byte(fmt.Sprintf("f%d", i)))
			}
			for i := 0; i < 10; i++ {
				if got := string(<-ch); got != fmt.Sprintf("f%d", i) {
					t.Fatalf("frame %d = %q", i, got)
				}
			}
			if h.Dropped() != 0 {
				t.Fatalf("dropped = %d, want 0", h.Dropped())
			}
		}},
		{"nonblocking_send_drops_and_counts", func(t *testing.T) {
			var metric countInc
			h := Hub{DropMetric: &metric}
			ch, cancel, _ := h.Subscribe(1)
			defer cancel()
			h.Publish([]byte("kept"))
			h.Publish([]byte("dropped1"))
			h.Publish([]byte("dropped2"))
			if got := string(<-ch); got != "kept" {
				t.Fatalf("first frame = %q, want kept", got)
			}
			if h.Dropped() != 2 || metric.n.Load() != 2 {
				t.Fatalf("dropped = %d, metric = %d, want 2/2", h.Dropped(), metric.n.Load())
			}
		}},
		{"marshal_once_skips_unwatched", func(t *testing.T) {
			var h Hub
			h.PublishJSON(map[string]int{"seq": 1}) // no subscribers: dropped silently
			ch, cancel, _ := h.Subscribe(4)
			defer cancel()
			h.PublishJSON(map[string]int{"seq": 2})
			if got := string(<-ch); got != `{"seq":2}` {
				t.Fatalf("frame = %q", got)
			}
			h.PublishJSON(func() {}) // unmarshalable: dropped, must not panic
			if h.Dropped() != 0 {
				t.Fatalf("dropped = %d, want 0", h.Dropped())
			}
		}},
		{"cancel_idempotent_closes_channel", func(t *testing.T) {
			var h Hub
			ch, cancel, _ := h.Subscribe(1)
			cancel()
			cancel() // second cancel must not double-close
			if _, open := <-ch; open {
				t.Fatal("channel still open after cancel")
			}
			if h.SubscriberCount() != 0 {
				t.Fatalf("subscriberCount = %d after cancel", h.SubscriberCount())
			}
			h.Publish([]byte("x")) // publish after cancel must not panic
		}},
		{"close_ends_subscribers_and_rejects_new", func(t *testing.T) {
			var h Hub
			ch, cancel, _ := h.Subscribe(1)
			h.Close()
			h.Close() // idempotent
			if _, open := <-ch; open {
				t.Fatal("channel still open after hub close")
			}
			cancel() // cancel after close must not double-close
			if _, _, ok := h.Subscribe(1); ok {
				t.Fatal("subscribe succeeded on closed hub")
			}
			h.Publish([]byte("x")) // no-op, must not panic
		}},
		{"replay_ring_bounded_newest_last", func(t *testing.T) {
			h := Hub{ReplayLimit: 3}
			for i := 0; i < 5; i++ {
				h.Publish([]byte(fmt.Sprintf("f%d", i)))
			}
			_, replay, cancel, ok := h.SubscribeReplay(1)
			if !ok {
				t.Fatal("subscribeReplay refused")
			}
			defer cancel()
			want := []string{"f2", "f3", "f4"}
			if len(replay) != len(want) {
				t.Fatalf("replay len = %d, want %d", len(replay), len(want))
			}
			for i, w := range want {
				if string(replay[i]) != w {
					t.Fatalf("replay[%d] = %q, want %q", i, replay[i], w)
				}
			}
		}},
		{"no_replay_without_limit", func(t *testing.T) {
			var h Hub
			h.Publish([]byte("early"))
			_, replay, cancel, _ := h.SubscribeReplay(1)
			defer cancel()
			if len(replay) != 0 {
				t.Fatalf("replay len = %d on ReplayLimit=0 hub", len(replay))
			}
		}},
		{"concurrent_publish_subscribe_cancel_close", func(t *testing.T) {
			var metric countInc
			h := Hub{ReplayLimit: 8, DropMetric: &metric}
			var wg sync.WaitGroup
			for p := 0; p < 4; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						h.Publish([]byte(fmt.Sprintf("p%d-%d", p, i)))
						h.PublishJSON(map[string]int{"p": p, "i": i})
					}
				}(p)
			}
			for s := 0; s < 4; s++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						ch, _, cancel, ok := h.SubscribeReplay(2)
						if !ok {
							return // closer won
						}
						select {
						case <-ch:
						default:
						}
						cancel()
						cancel()
					}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				h.Close()
			}()
			wg.Wait()
			if h.Dropped() != metric.n.Load() {
				t.Fatalf("dropped = %d but metric = %d", h.Dropped(), metric.n.Load())
			}
			if _, _, ok := h.Subscribe(1); ok {
				t.Fatal("subscribe succeeded after close")
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}
