// Package sse provides the one fan-out hub behind every Server-Sent-Events
// stream in the tree: the telemetry live GC-event feed, gcassertd's
// per-tenant violation/event streams, and the server-wide SLO alert stream.
//
// The contract every publisher relies on: publishing NEVER blocks. Frames
// are fanned out to subscriber channels with non-blocking sends, and a
// subscriber that cannot keep up loses frames — each loss counted, both on
// the hub and (optionally) on a metrics counter — rather than stalling the
// publisher, which is frequently inside a stop-the-world GC pause.
//
// The hub is a zero-value-ready struct so it embeds directly in owners
// (configure ReplayLimit / DropMetric before the first Subscribe or
// Publish). Three optional behaviors cover the historical hub variants:
//
//   - Close support: a closeable hub (tenant deleted, server shut down)
//     closes every subscriber channel and rejects new subscriptions; a hub
//     that is never closed simply never calls Close.
//   - Replay ring: with ReplayLimit > 0 the hub retains the last N frames
//     and SubscribeReplay hands them to a new subscriber, so rare-and-bursty
//     streams (SLO alerts) are visible to late attachers.
//   - Marshal-once: PublishJSON marshals the value only when at least one
//     subscriber is attached, so pause-critical publishers pay nothing for
//     an unwatched stream.
package sse

import (
	"encoding/json"
	"sync"
	"sync/atomic"
)

// DropCounter receives one Inc per frame lost to a slow subscriber. It is
// an interface (rather than a concrete metrics type) so this package stays
// a leaf: telemetry imports sse, never the reverse.
type DropCounter interface{ Inc() }

// Hub fans pre-marshaled frames out to subscribers. The zero value is ready
// to use; set ReplayLimit and DropMetric (if wanted) before first use.
type Hub struct {
	// ReplayLimit bounds the retained frame ring handed to SubscribeReplay
	// callers. Zero (the default) retains nothing.
	ReplayLimit int
	// DropMetric, when non-nil, mirrors the dropped-frame count into a
	// metrics counter.
	DropMetric DropCounter

	mu     sync.Mutex
	subs   map[chan []byte]struct{}
	closed bool
	replay [][]byte

	dropped atomic.Uint64
}

// Subscribe registers a subscriber with the given channel buffer (minimum
// 1). It returns ok=false when the hub is already closed. The cancel
// function is idempotent and closes the channel, so readers may range over
// it; it is safe to call concurrently with Close.
func (h *Hub) Subscribe(buf int) (frames <-chan []byte, cancel func(), ok bool) {
	if buf < 1 {
		buf = 1
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, nil, false
	}
	ch := make(chan []byte, buf)
	if h.subs == nil {
		h.subs = make(map[chan []byte]struct{})
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	var once sync.Once
	cancel = func() {
		once.Do(func() {
			h.mu.Lock()
			// Close may have won the race and already closed the channel.
			if _, live := h.subs[ch]; live {
				delete(h.subs, ch)
				close(ch)
			}
			h.mu.Unlock()
		})
	}
	return ch, cancel, true
}

// SubscribeReplay is Subscribe plus a copy of the retained replay ring
// (newest last). Delivery around attach time is at-least-once: a frame
// racing the subscription may appear in both the replay slice and the live
// channel, so consumers needing exactly-once must key on frame content.
func (h *Hub) SubscribeReplay(buf int) (frames <-chan []byte, replay [][]byte, cancel func(), ok bool) {
	frames, cancel, ok = h.Subscribe(buf)
	if !ok {
		return nil, nil, nil, false
	}
	h.mu.Lock()
	replay = append([][]byte(nil), h.replay...)
	h.mu.Unlock()
	return frames, replay, cancel, true
}

// Publish records the frame in the replay ring (if enabled) and sends it to
// every subscriber, dropping on full channels. Never blocks. Publishing on
// a closed hub is a no-op.
func (h *Hub) Publish(frame []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	if h.ReplayLimit > 0 {
		h.replay = append(h.replay, frame)
		if len(h.replay) > h.ReplayLimit {
			h.replay = h.replay[len(h.replay)-h.ReplayLimit:]
		}
	}
	h.publishLocked(frame)
}

// PublishJSON marshals v and fans it out — but only when at least one
// subscriber is attached, so publishers on pause-critical paths pay a
// mutex and a length check for an unwatched stream, never a marshal.
// Intended for hubs without a replay ring (the skipped marshal also skips
// ring recording); replayed streams marshal up front and call Publish.
func (h *Hub) PublishJSON(v any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || len(h.subs) == 0 {
		return
	}
	frame, err := json.Marshal(v)
	if err != nil {
		return
	}
	h.publishLocked(frame)
}

// publishLocked fans one frame out under h.mu.
func (h *Hub) publishLocked(frame []byte) {
	for ch := range h.subs {
		select {
		case ch <- frame:
		default:
			// Slow subscriber: drop the frame, never block the publisher.
			h.dropped.Add(1)
			if h.DropMetric != nil {
				h.DropMetric.Inc()
			}
		}
	}
}

// Close closes every subscriber channel and rejects future subscriptions.
// Safe to call more than once, and concurrently with Subscribe/Publish.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}

// Dropped reports frames lost to slow subscribers. A rising value means
// some consumer is not keeping up — the publisher is unaffected.
func (h *Hub) Dropped() uint64 { return h.dropped.Load() }

// SubscriberCount reports the number of attached subscribers.
func (h *Hub) SubscriberCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}
