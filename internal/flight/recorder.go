// Package flight is the GC flight recorder: an always-on bounded ring of
// recent collection cycles — phase timings, per-worker mark statistics,
// per-kind assertion activity, census deltas — plus a ring of recent
// assertion violations, dumpable at any moment as a self-contained forensic
// bundle. The bundle is a JSON document carrying the cycle timeline, the
// violation log, and a heap profile in pprof protobuf format (allocation
// site → live objects/bytes) that `go tool pprof` consumes directly.
//
// The recorder answers the question the event trace and the census cannot:
// when an assertion fires in production, what did the *last N collections*
// look like, and who allocated the objects that are still alive? Aviation
// flight recorders are cheap to run and priceless after a crash; this is
// the same trade for the GC.
//
// Concurrency: the Observer half and RecordViolation run inside
// stop-the-world collections on the runtime's goroutine; the rings are
// mutex-guarded so HTTP handlers and signal-triggered dumps may read a
// Bundle while the workload runs.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"gcassert/internal/collector"
	"gcassert/internal/core"
	"gcassert/internal/heapdump"
	"gcassert/internal/version"
)

// PhaseSpan is one GC phase of one recorded cycle.
type PhaseSpan struct {
	Phase string `json:"phase"`
	DurNs int64  `json:"dur_ns"`
}

// WorkerSpan is one parallel mark worker's activity in one recorded cycle.
type WorkerSpan struct {
	Worker int   `json:"worker"`
	Marked int   `json:"marked"`
	Steals int   `json:"steals"`
	DurNs  int64 `json:"dur_ns"`
}

// KindDelta is one assertion kind's activity during one recorded cycle.
type KindDelta struct {
	Kind       string `json:"kind"`
	Checks     uint64 `json:"checks"`
	Violations uint64 `json:"violations"`
}

// CostRow is one assertion kind's attributed cost during one recorded
// cycle (present only on runtimes with cost attribution enabled).
type CostRow struct {
	Kind   string `json:"kind"`
	Checks uint64 `json:"checks"`
	Ns     int64  `json:"ns"`
}

// TypeDelta is one type's live-census change across one recorded cycle,
// relative to the previous recorded full collection. Negative values mean
// the type shrank.
type TypeDelta struct {
	TypeName string `json:"type_name"`
	Objects  int64  `json:"objects"`
	Words    int64  `json:"words"`
}

// Cycle is one recorded collection.
type Cycle struct {
	GC            uint64       `json:"gc"`
	Reason        string       `json:"reason"`
	StartUnixNs   int64        `json:"start_unix_ns"`
	TotalNs       int64        `json:"total_ns"`
	Phases        []PhaseSpan  `json:"phases,omitempty"`
	RootsScanned  int          `json:"roots_scanned"`
	ObjectsMarked int          `json:"objects_marked"`
	ObjectsFreed  int          `json:"objects_freed"`
	ObjectsLive   int          `json:"objects_live"`
	WordsFreed    int          `json:"words_freed"`
	Workers       int          `json:"workers"`
	Fallback      string       `json:"fallback,omitempty"`
	PerWorker     []WorkerSpan `json:"per_worker,omitempty"`
	Kinds         []KindDelta  `json:"kinds,omitempty"`
	CensusDelta   []TypeDelta  `json:"census_delta,omitempty"`
	// Trigger explanation and per-kind cost attribution, stamped when the
	// runtime runs with CostAttribution. Additive omitempty fields: schema
	// version 1 bundles without them parse unchanged.
	Trigger      string    `json:"trigger,omitempty"`
	OccupancyPct float64   `json:"occupancy_pct,omitempty"`
	AssertCost   []CostRow `json:"assert_cost,omitempty"`
}

// ViolationRecord is one assertion violation as the recorder retains it.
type ViolationRecord struct {
	GC       uint64   `json:"gc"`
	Kind     string   `json:"kind"`
	TypeName string   `json:"type_name"`
	Site     string   `json:"site,omitempty"`
	Root     string   `json:"root,omitempty"`
	Path     []string `json:"path,omitempty"`
	Report   string   `json:"report"`
	UnixNs   int64    `json:"unix_ns"`
}

// Bundle is the self-contained forensic dump: everything the recorder holds
// at one instant. HeapProfile, when present, is a gzipped pprof protobuf
// (see EncodeHeapProfile); JSON encoding base64s it, so a bundle survives
// any text transport intact.
type Bundle struct {
	SchemaVersion  int    `json:"schema_version"`
	CapturedUnixNs int64  `json:"captured_unix_ns"`
	Trigger        string `json:"trigger"`
	// Instance identifies who captured the bundle (instance ID, host, PID,
	// build). Added in schema version 2; bundles from version-1 writers
	// parse with Instance nil.
	Instance        *version.Identity `json:"instance,omitempty"`
	TotalCycles     uint64            `json:"total_cycles"`
	Cycles          []Cycle           `json:"cycles"`
	TotalViolations uint64            `json:"total_violations"`
	Violations      []ViolationRecord `json:"violations"`
	HeapProfile     []byte            `json:"heap_profile_pprof,omitempty"`
}

// SchemaVersion is the bundle format version written by this package.
// Version 2 added the Instance identity stamp; the additions are purely
// additive, so readers accept every version in [MinSchemaVersion,
// SchemaVersion].
const SchemaVersion = 2

// MinSchemaVersion is the oldest bundle format this package still reads.
const MinSchemaVersion = 1

// Config configures a Recorder.
type Config struct {
	// Cycles bounds the cycle ring (default 64).
	Cycles int
	// Violations bounds the violation ring (default 32).
	Violations int
}

// Recorder is the flight recorder. It implements collector.Observer for the
// cycle ring; violations arrive through RecordViolation (the runtime tees
// its reporter chain into it).
type Recorder struct {
	// identity, when set, stamps captured bundles (schema v2).
	identity *version.Identity

	// Sources, installed once at wiring time (before the first collection).
	statsFn   func() core.Stats
	censusFn  func() (heapdump.Snapshot, bool)
	profileFn func() []SiteSample
	dumpFn    func() (io.WriteCloser, error)

	// Per-cycle accumulation; touched only inside stop-the-world collections
	// on the runtime's goroutine.
	gcStart      time.Time
	phases       []PhaseSpan
	engineBefore core.Stats
	prevTypes    map[string]prevCensus
	dumpedGC     uint64
	dumpedAny    bool

	// dumpReq is the deferred-dump latch: RequestDump (any goroutine, e.g. a
	// signal handler) sets it, and GCEnd honors it once the heap is
	// consistent again.
	dumpReq atomic.Bool

	mu      sync.Mutex
	cycles  []Cycle
	head    int
	total   uint64
	viols   []ViolationRecord
	vhead   int
	vtotal  uint64
	dumps   uint64
	dumpErr error
}

type prevCensus struct {
	objects uint64
	words   uint64
}

var _ collector.Observer = (*Recorder)(nil)

// New creates a recorder per cfg.
func New(cfg Config) *Recorder {
	if cfg.Cycles <= 0 {
		cfg.Cycles = 64
	}
	if cfg.Violations <= 0 {
		cfg.Violations = 32
	}
	return &Recorder{
		cycles: make([]Cycle, 0, cfg.Cycles),
		viols:  make([]ViolationRecord, 0, cfg.Violations),
	}
}

// SetIdentity installs the instance identity stamped on captured bundles.
// Install at wiring time, before any bundle is captured.
func (r *Recorder) SetIdentity(id version.Identity) { r.identity = &id }

// SetStatsSource installs the assertion-engine stats source used to compute
// per-kind activity deltas. Install before the first collection.
func (r *Recorder) SetStatsSource(fn func() core.Stats) { r.statsFn = fn }

// SetCensusSource installs the census source used to compute per-type
// census deltas; the source must already hold the current cycle's snapshot
// when the recorder's GCEnd runs (the runtime orders its observers so).
func (r *Recorder) SetCensusSource(fn func() (heapdump.Snapshot, bool)) { r.censusFn = fn }

// SetProfileSource installs the live-heap profile source used for bundle
// heap profiles. The source walks the managed heap, so it must only run
// while the heap is consistent: between collections, or during a
// stop-the-world pause before the sweep (the violation-triggered dump path,
// where the heap is frozen mid-mark and every object — including the
// offender — is still present).
func (r *Recorder) SetProfileSource(fn func() []SiteSample) { r.profileFn = fn }

// SetDumpSink arms violation-triggered dumps: on the first violation of
// each collection cycle the recorder opens the sink and writes a bundle
// (trigger "violation") to it. Errors are retained for Stats, never
// propagated into the collection.
func (r *Recorder) SetDumpSink(fn func() (io.WriteCloser, error)) { r.dumpFn = fn }

// GCBegin implements collector.Observer.
func (r *Recorder) GCBegin(seq uint64, reason collector.Reason) {
	r.gcStart = time.Now()
	r.phases = make([]PhaseSpan, 0, 3)
	if r.statsFn != nil {
		r.engineBefore = r.statsFn()
	}
}

// PhaseBegin implements collector.Observer (no-op; PhaseEnd carries the
// measured duration).
func (r *Recorder) PhaseBegin(p collector.Phase) {}

// PhaseEnd implements collector.Observer.
func (r *Recorder) PhaseEnd(p collector.Phase, d time.Duration) {
	r.phases = append(r.phases, PhaseSpan{Phase: p.String(), DurNs: int64(d)})
}

// GCEnd implements collector.Observer: fold the completed collection into
// the cycle ring.
func (r *Recorder) GCEnd(col *collector.Collection) {
	cy := Cycle{
		GC:            col.Seq,
		Reason:        string(col.Reason),
		StartUnixNs:   r.gcStart.UnixNano(),
		TotalNs:       int64(col.TotalTime),
		Phases:        r.phases,
		RootsScanned:  col.RootsScanned,
		ObjectsMarked: col.ObjectsMarked,
		ObjectsFreed:  col.ObjectsFreed,
		ObjectsLive:   col.ObjectsLive,
		WordsFreed:    col.WordsFreed,
		Workers:       col.Workers,
		Fallback:      col.Fallback,
	}
	r.phases = nil
	if len(col.PerWorker) > 0 {
		cy.PerWorker = make([]WorkerSpan, len(col.PerWorker))
		for i, ws := range col.PerWorker {
			cy.PerWorker[i] = WorkerSpan{Worker: i, Marked: ws.Marked, Steals: ws.Steals, DurNs: ws.DurNs}
		}
	}
	if r.statsFn != nil {
		cy.Kinds = kindDeltas(r.engineBefore, r.statsFn())
	}
	if col.Trigger.Why != "" {
		cy.Trigger = col.Trigger.Why
		cy.OccupancyPct = col.Trigger.OccupancyPct
	}
	if len(col.AssertCost) > 0 {
		cy.AssertCost = make([]CostRow, len(col.AssertCost))
		for i, c := range col.AssertCost {
			cy.AssertCost[i] = CostRow{Kind: c.Kind, Checks: c.Checks, Ns: c.Ns}
		}
	}
	if r.censusFn != nil {
		if snap, ok := r.censusFn(); ok && snap.GC == col.Seq {
			cy.CensusDelta = r.censusDelta(&snap)
		}
	}
	r.mu.Lock()
	if len(r.cycles) < cap(r.cycles) {
		r.cycles = append(r.cycles, cy)
	} else {
		r.cycles[r.head] = cy
		r.head = (r.head + 1) % len(r.cycles)
	}
	r.total++
	r.mu.Unlock()
	if r.dumpReq.Swap(false) && r.dumpFn != nil {
		r.dump("signal")
	}
}

// RequestDump asks for a one-shot bundle dump (trigger "signal") at the end
// of the next collection, when the heap is consistent enough for the profile
// walk. Safe to call from any goroutine — this is the SIGQUIT-style hook:
// the signal handler requests, the collector delivers. A no-op until a dump
// sink is armed.
func (r *Recorder) RequestDump() { r.dumpReq.Store(true) }

// censusDelta diffs the snapshot against the previously recorded one and
// advances the baseline. Types absent from the new snapshot but present
// before show up as pure shrinkage.
func (r *Recorder) censusDelta(snap *heapdump.Snapshot) []TypeDelta {
	next := make(map[string]prevCensus, len(snap.Types))
	var out []TypeDelta
	for i := range snap.Types {
		row := &snap.Types[i]
		next[row.TypeName] = prevCensus{objects: row.Objects, words: row.Words}
		prev := r.prevTypes[row.TypeName]
		if d := (TypeDelta{
			TypeName: row.TypeName,
			Objects:  int64(row.Objects) - int64(prev.objects),
			Words:    int64(row.Words) - int64(prev.words),
		}); d.Objects != 0 || d.Words != 0 {
			out = append(out, d)
		}
	}
	for name, prev := range r.prevTypes {
		if _, ok := next[name]; !ok {
			out = append(out, TypeDelta{TypeName: name, Objects: -int64(prev.objects), Words: -int64(prev.words)})
		}
	}
	r.prevTypes = next
	sortDeltas(out)
	return out
}

// sortDeltas orders deltas by absolute word growth descending, name
// ascending on ties (insertion sort; live-type counts are small).
func sortDeltas(d []TypeDelta) {
	abs := func(x int64) int64 {
		if x < 0 {
			return -x
		}
		return x
	}
	for i := 1; i < len(d); i++ {
		for j := i; j > 0; j-- {
			a, b := &d[j], &d[j-1]
			if abs(a.Words) > abs(b.Words) || (abs(a.Words) == abs(b.Words) && a.TypeName < b.TypeName) {
				d[j], d[j-1] = d[j-1], d[j]
			} else {
				break
			}
		}
	}
}

// kindDeltas converts an engine-stats delta into per-kind activity. The
// natural-unit mapping lives in core.CheckDeltas, shared with the telemetry
// layer and cost attribution so the unit definitions cannot drift.
func kindDeltas(before, after core.Stats) []KindDelta {
	checks := core.CheckDeltas(before, after)
	names := core.KindNames()
	out := make([]KindDelta, 0, core.NumKinds)
	for k := 0; k < core.NumKinds; k++ {
		d := KindDelta{
			Kind:       names[k],
			Checks:     checks[k],
			Violations: after.ViolationsByKind[k] - before.ViolationsByKind[k],
		}
		if d.Checks != 0 || d.Violations != 0 {
			out = append(out, d)
		}
	}
	return out
}

// RecordViolation appends a violation to the ring and, when a dump sink is
// armed, writes a violation-triggered bundle — at most one per collection
// cycle, on the cycle's first violation, while the world is still stopped
// and the offending object still live (so the heap profile includes it).
func (r *Recorder) RecordViolation(v ViolationRecord) {
	if v.UnixNs == 0 {
		v.UnixNs = time.Now().UnixNano()
	}
	r.mu.Lock()
	if len(r.viols) < cap(r.viols) {
		r.viols = append(r.viols, v)
	} else {
		r.viols[r.vhead] = v
		r.vhead = (r.vhead + 1) % len(r.viols)
	}
	r.vtotal++
	r.mu.Unlock()
	if r.dumpFn == nil || (r.dumpedAny && r.dumpedGC == v.GC) {
		return
	}
	r.dumpedAny = true
	r.dumpedGC = v.GC
	r.dump("violation")
}

// dump opens the armed sink and writes a bundle, retaining any failure for
// Stats; errors never propagate into the collection.
func (r *Recorder) dump(trigger string) {
	w, err := r.dumpFn()
	if err == nil {
		err = r.WriteBundle(w, trigger)
		if cerr := w.Close(); err == nil {
			err = cerr
		}
	}
	r.mu.Lock()
	if err != nil {
		r.dumpErr = err
	} else {
		r.dumps++
	}
	r.mu.Unlock()
}

// Stats summarizes the recorder's activity.
type Stats struct {
	// CyclesRecorded and ViolationsRecorded count everything ever seen
	// (retention is bounded by the rings).
	CyclesRecorded     uint64
	ViolationsRecorded uint64
	// Dumps counts completed violation-triggered dumps; LastDumpErr is the
	// most recent dump failure, if any.
	Dumps       uint64
	LastDumpErr error
}

// Stats returns the recorder's activity summary.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		CyclesRecorded:     r.total,
		ViolationsRecorded: r.vtotal,
		Dumps:              r.dumps,
		LastDumpErr:        r.dumpErr,
	}
}

// Cycles returns the retained cycles, oldest first.
func (r *Recorder) Cycles() []Cycle {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cyclesLocked()
}

func (r *Recorder) cyclesLocked() []Cycle {
	n := len(r.cycles)
	out := make([]Cycle, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.cycles[(r.head+i)%n])
	}
	return out
}

// Violations returns the retained violations, oldest first.
func (r *Recorder) Violations() []ViolationRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.violationsLocked()
}

func (r *Recorder) violationsLocked() []ViolationRecord {
	n := len(r.viols)
	out := make([]ViolationRecord, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.viols[(r.vhead+i)%n])
	}
	return out
}

// Bundle captures a forensic bundle. trigger labels what prompted the dump
// ("violation", "http", "signal", "final", ...). The heap profile is
// included when a profile source is installed; its capture time doubles as
// the profile's time_nanos.
func (r *Recorder) Bundle(trigger string) Bundle {
	now := time.Now().UnixNano()
	var prof []byte
	if r.profileFn != nil {
		prof = EncodeHeapProfile(r.profileFn(), now)
	}
	r.mu.Lock()
	b := Bundle{
		SchemaVersion:   SchemaVersion,
		CapturedUnixNs:  now,
		Trigger:         trigger,
		Instance:        r.identity,
		TotalCycles:     r.total,
		Cycles:          r.cyclesLocked(),
		TotalViolations: r.vtotal,
		Violations:      r.violationsLocked(),
		HeapProfile:     prof,
	}
	r.mu.Unlock()
	return b
}

// WriteBundle captures a bundle and writes it as indented JSON.
func (r *Recorder) WriteBundle(w io.Writer, trigger string) error {
	b := r.Bundle(trigger)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&b)
}

// ReadBundle parses a bundle previously written by WriteBundle.
func ReadBundle(rd io.Reader) (Bundle, error) {
	var b Bundle
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&b); err != nil {
		return Bundle{}, fmt.Errorf("flight: parsing bundle: %w", err)
	}
	if b.SchemaVersion < MinSchemaVersion || b.SchemaVersion > SchemaVersion {
		return Bundle{}, fmt.Errorf(
			"flight: bundle schema version %d not supported (this build reads versions %d through %d); re-capture the bundle or use a matching gcfr build",
			b.SchemaVersion, MinSchemaVersion, SchemaVersion)
	}
	return b, nil
}
