package flight

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// SiteSample is one (allocation site, type) group of the live heap: the
// unit of the bundle's heap profile. Site is the registered allocation-site
// description ("" when provenance is off or the allocation was unsampled).
type SiteSample struct {
	Site    string `json:"site"`
	Type    string `json:"type"`
	Objects int64  `json:"objects"`
	Bytes   int64  `json:"bytes"`
}

// EncodeHeapProfile renders site samples as a gzipped profile.proto message
// consumable by `go tool pprof`. Each distinct site becomes one synthetic
// function+location (pprof resolves sample stacks through locations, and a
// one-frame stack named by the site description is exactly the granularity
// provenance records); each (site, type) sample carries two values —
// (objects, count) and (space, bytes) — plus a "type" label.
//
// The encoding is hand-rolled over the protobuf wire format: the module has
// no dependencies, and the dozen tag kinds the profile needs (varints and
// length-delimited fields) do not justify one.
func EncodeHeapProfile(samples []SiteSample, timeNanos int64) []byte {
	st := newStringTable()
	objectsIdx, countIdx := st.index("objects"), st.index("count")
	spaceIdx, bytesIdx := st.index("space"), st.index("bytes")
	typeIdx := st.index("type")

	// One function + location per distinct site, 1-based IDs (pprof reserves
	// id 0), in first-appearance order so encoding is deterministic.
	siteLoc := map[string]uint64{}
	var siteOrder []string
	for i := range samples {
		site := samples[i].Site
		if site == "" {
			site = "(unknown)"
		}
		if _, ok := siteLoc[site]; !ok {
			siteLoc[site] = uint64(len(siteOrder) + 1)
			siteOrder = append(siteOrder, site)
		}
	}

	var p protoBuf
	// sample_type: ValueType{type, unit}
	p.message(1, vtype(objectsIdx, countIdx))
	p.message(1, vtype(spaceIdx, bytesIdx))
	for i := range samples {
		s := &samples[i]
		site := s.Site
		if site == "" {
			site = "(unknown)"
		}
		var sm protoBuf
		sm.packedUvarints(1, []uint64{siteLoc[site]}) // location_id
		sm.packedVarints(2, []int64{s.Objects, s.Bytes})
		var lb protoBuf
		lb.varint(1, uint64(typeIdx))
		lb.varint(2, uint64(st.index(s.Type)))
		sm.message(3, lb.bytes()) // label
		p.message(2, sm.bytes())
	}
	for _, site := range siteOrder {
		id := siteLoc[site]
		var ln protoBuf
		ln.varint(1, id) // function_id (same id space as the location)
		var loc protoBuf
		loc.varint(1, id)
		loc.message(4, ln.bytes()) // line
		p.message(4, loc.bytes())
		var fn protoBuf
		fn.varint(1, id)
		fn.varint(2, uint64(st.index(site))) // name
		p.message(5, fn.bytes())
	}
	for _, s := range st.strings {
		p.str(6, s)
	}
	if timeNanos != 0 {
		p.varint(9, uint64(timeNanos))
	}

	var out bytes.Buffer
	zw := gzip.NewWriter(&out)
	zw.Write(p.bytes())
	zw.Close()
	return out.Bytes()
}

func vtype(typeIdx, unitIdx int64) []byte {
	var vt protoBuf
	vt.varint(1, uint64(typeIdx))
	vt.varint(2, uint64(unitIdx))
	return vt.bytes()
}

// stringTable builds the profile's deduplicated string table; index 0 is
// the mandatory empty string.
type stringTable struct {
	strings []string
	idx     map[string]int64
}

func newStringTable() *stringTable {
	return &stringTable{strings: []string{""}, idx: map[string]int64{"": 0}}
}

func (t *stringTable) index(s string) int64 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := int64(len(t.strings))
	t.strings = append(t.strings, s)
	t.idx[s] = i
	return i
}

// protoBuf is a minimal protobuf wire-format writer: varint (wire type 0)
// and length-delimited (wire type 2) fields are all profile.proto needs.
type protoBuf struct{ buf []byte }

func (p *protoBuf) bytes() []byte { return p.buf }

func (p *protoBuf) uvarint(v uint64) {
	for v >= 0x80 {
		p.buf = append(p.buf, byte(v)|0x80)
		v >>= 7
	}
	p.buf = append(p.buf, byte(v))
}

func (p *protoBuf) tag(field, wire int) { p.uvarint(uint64(field)<<3 | uint64(wire)) }

func (p *protoBuf) varint(field int, v uint64) {
	p.tag(field, 0)
	p.uvarint(v)
}

func (p *protoBuf) message(field int, body []byte) {
	p.tag(field, 2)
	p.uvarint(uint64(len(body)))
	p.buf = append(p.buf, body...)
}

func (p *protoBuf) str(field int, s string) {
	p.tag(field, 2)
	p.uvarint(uint64(len(s)))
	p.buf = append(p.buf, s...)
}

func (p *protoBuf) packedUvarints(field int, vs []uint64) {
	var body protoBuf
	for _, v := range vs {
		body.uvarint(v)
	}
	p.message(field, body.bytes())
}

func (p *protoBuf) packedVarints(field int, vs []int64) {
	var body protoBuf
	for _, v := range vs {
		body.uvarint(uint64(v))
	}
	p.message(field, body.bytes())
}

// Profile is a decoded heap profile, resolved back to sites: the read half
// of EncodeHeapProfile, used by tests and the gcfr bundle viewer. It
// understands exactly the subset of profile.proto the encoder emits (plus
// unpacked repeated scalars, which some writers prefer).
type Profile struct {
	// SampleTypes holds the value schema, e.g. objects/count, space/bytes.
	SampleTypes []ProfileValueType
	// Samples are the resolved samples, in encoded order.
	Samples []ProfileSample
	// TimeNanos is the capture timestamp.
	TimeNanos int64
}

// ProfileValueType names one sample value dimension.
type ProfileValueType struct {
	Type string
	Unit string
}

// ProfileSample is one decoded sample with its location stack resolved to
// site names and its labels materialized.
type ProfileSample struct {
	// Sites is the location stack, leaf first (one entry for profiles this
	// package encodes).
	Sites  []string
	Labels map[string]string
	Values []int64
}

// ParseProfile decodes a gzipped profile.proto blob as written by
// EncodeHeapProfile.
func ParseProfile(data []byte) (*Profile, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("flight: profile is not gzipped: %w", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("flight: decompressing profile: %w", err)
	}
	if err := zr.Close(); err != nil {
		return nil, err
	}

	var (
		strings    []string
		sampleVTs  [][2]int64 // (type, unit) string indices
		rawSamples [][]byte
		locFunc    = map[uint64]uint64{} // location id -> function id
		funcName   = map[uint64]int64{}  // function id -> name string index
		prof       = &Profile{}
	)
	err = walkFields(raw, func(field int, wire int, varint uint64, body []byte) error {
		switch field {
		case 1: // sample_type
			var vt [2]int64
			err := walkFields(body, func(f, w int, v uint64, _ []byte) error {
				if f == 1 {
					vt[0] = int64(v)
				} else if f == 2 {
					vt[1] = int64(v)
				}
				return nil
			})
			if err != nil {
				return err
			}
			sampleVTs = append(sampleVTs, vt)
		case 2: // sample: resolve after the string table is complete
			rawSamples = append(rawSamples, body)
		case 4: // location
			var id, fid uint64
			err := walkFields(body, func(f, w int, v uint64, b []byte) error {
				switch f {
				case 1:
					id = v
				case 4: // line
					return walkFields(b, func(lf, lw int, lv uint64, _ []byte) error {
						if lf == 1 && fid == 0 {
							fid = lv
						}
						return nil
					})
				}
				return nil
			})
			if err != nil {
				return err
			}
			locFunc[id] = fid
		case 5: // function
			var id uint64
			var name int64
			err := walkFields(body, func(f, w int, v uint64, _ []byte) error {
				if f == 1 {
					id = v
				} else if f == 2 {
					name = int64(v)
				}
				return nil
			})
			if err != nil {
				return err
			}
			funcName[id] = name
		case 6: // string_table
			strings = append(strings, string(body))
		case 9:
			prof.TimeNanos = int64(varint)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	str := func(i int64) string {
		if i < 0 || int(i) >= len(strings) {
			return ""
		}
		return strings[i]
	}
	for _, vt := range sampleVTs {
		prof.SampleTypes = append(prof.SampleTypes, ProfileValueType{Type: str(vt[0]), Unit: str(vt[1])})
	}
	for _, body := range rawSamples {
		s := ProfileSample{Labels: map[string]string{}}
		err := walkFields(body, func(f, w int, v uint64, b []byte) error {
			switch f {
			case 1: // location_id (packed or repeated)
				ids, err := scalars(w, v, b)
				if err != nil {
					return err
				}
				for _, id := range ids {
					s.Sites = append(s.Sites, str(funcName[locFunc[id]]))
				}
			case 2: // value
				vals, err := scalars(w, v, b)
				if err != nil {
					return err
				}
				for _, x := range vals {
					s.Values = append(s.Values, int64(x))
				}
			case 3: // label
				var key, val int64
				err := walkFields(b, func(lf, lw int, lv uint64, _ []byte) error {
					if lf == 1 {
						key = int64(lv)
					} else if lf == 2 {
						val = int64(lv)
					}
					return nil
				})
				if err != nil {
					return err
				}
				if k := str(key); k != "" {
					s.Labels[k] = str(val)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		prof.Samples = append(prof.Samples, s)
	}
	return prof, nil
}

// scalars materializes a repeated varint field from either encoding: one
// packed length-delimited body (wire 2) or a single unpacked value (wire 0).
func scalars(wire int, varint uint64, body []byte) ([]uint64, error) {
	if wire == 0 {
		return []uint64{varint}, nil
	}
	var out []uint64
	for off := 0; off < len(body); {
		v, n := uvarint(body[off:])
		if n <= 0 {
			return nil, fmt.Errorf("flight: truncated packed varint")
		}
		out = append(out, v)
		off += n
	}
	return out, nil
}

// walkFields iterates a protobuf message's fields, invoking fn per field
// with the varint value (wire type 0) or body (wire type 2). Wire types 1
// and 5 (fixed64/fixed32) are skipped; profile.proto does not use them.
func walkFields(msg []byte, fn func(field, wire int, varint uint64, body []byte) error) error {
	for off := 0; off < len(msg); {
		key, n := uvarint(msg[off:])
		if n <= 0 {
			return fmt.Errorf("flight: truncated field key at %d", off)
		}
		off += n
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0:
			v, n := uvarint(msg[off:])
			if n <= 0 {
				return fmt.Errorf("flight: truncated varint in field %d", field)
			}
			off += n
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case 2:
			l, n := uvarint(msg[off:])
			if n <= 0 || off+n+int(l) > len(msg) {
				return fmt.Errorf("flight: truncated length-delimited field %d", field)
			}
			off += n
			if err := fn(field, wire, 0, msg[off:off+int(l)]); err != nil {
				return err
			}
			off += int(l)
		case 1:
			off += 8
		case 5:
			off += 4
		default:
			return fmt.Errorf("flight: unsupported wire type %d in field %d", wire, field)
		}
	}
	return nil
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}
