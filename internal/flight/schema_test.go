package flight

import (
	"bytes"
	"strings"
	"testing"

	"gcassert/internal/version"
)

func TestBundleStampedWithIdentity(t *testing.T) {
	r := New(Config{})
	r.SetIdentity(version.NewIdentity("stamp-test"))
	b := r.Bundle("test")
	if b.SchemaVersion != SchemaVersion {
		t.Fatalf("schema = %d, want %d", b.SchemaVersion, SchemaVersion)
	}
	if b.Instance == nil || b.Instance.InstanceID != "stamp-test" {
		t.Fatalf("instance stamp = %+v", b.Instance)
	}
	if b.Instance.Host == "" || b.Instance.PID == 0 {
		t.Fatalf("identity missing host/pid: %+v", b.Instance)
	}

	// Round trip through the wire format.
	var buf bytes.Buffer
	if err := r.WriteBundle(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Instance == nil || got.Instance.InstanceID != "stamp-test" {
		t.Fatalf("round-tripped instance = %+v", got.Instance)
	}
}

func TestReadBundleAcceptsOlderSchema(t *testing.T) {
	// A schema-1 bundle (pre-identity) still reads; Instance stays nil.
	v1 := `{"schema_version":1,"captured_unix_ns":5,"trigger":"http",
	        "total_cycles":0,"cycles":[],"total_violations":0,"violations":[]}`
	b, err := ReadBundle(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("schema-1 bundle rejected: %v", err)
	}
	if b.Instance != nil {
		t.Fatalf("schema-1 bundle grew an instance stamp: %+v", b.Instance)
	}
}

func TestReadBundleRejectsUnknownSchema(t *testing.T) {
	cases := []string{
		`{"schema_version":99}`,
		`{"schema_version":0}`,
		`{}`, // missing version decodes as 0: not a valid bundle
	}
	for _, raw := range cases {
		_, err := ReadBundle(strings.NewReader(raw))
		if err == nil {
			t.Fatalf("bundle %s accepted", raw)
		}
		if !strings.Contains(err.Error(), "schema version") ||
			!strings.Contains(err.Error(), "not supported") {
			t.Fatalf("rejection message unclear: %v", err)
		}
	}
}
