package flight

import (
	"bytes"
	"compress/gzip"
	"testing"
)

func TestHeapProfileRoundTrip(t *testing.T) {
	samples := []SiteSample{
		{Site: "main.MJ:3: new Node", Type: "Node", Objects: 1200, Bytes: 38400},
		{Site: "main.MJ:9: new [int", Type: "[int", Objects: 4, Bytes: 4096},
		{Site: "", Type: "Customer", Objects: 7, Bytes: 336},
	}
	blob := EncodeHeapProfile(samples, 12345)

	// The blob must be a valid gzip stream (pprof sniffs the magic bytes).
	if _, err := gzip.NewReader(bytes.NewReader(blob)); err != nil {
		t.Fatalf("profile is not gzipped: %v", err)
	}

	p, err := ParseProfile(blob)
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if p.TimeNanos != 12345 {
		t.Errorf("TimeNanos = %d, want 12345", p.TimeNanos)
	}
	want := []ProfileValueType{{Type: "objects", Unit: "count"}, {Type: "space", Unit: "bytes"}}
	if len(p.SampleTypes) != 2 || p.SampleTypes[0] != want[0] || p.SampleTypes[1] != want[1] {
		t.Errorf("SampleTypes = %+v, want %+v", p.SampleTypes, want)
	}
	if len(p.Samples) != len(samples) {
		t.Fatalf("got %d samples, want %d", len(p.Samples), len(samples))
	}
	for i, in := range samples {
		got := p.Samples[i]
		wantSite := in.Site
		if wantSite == "" {
			wantSite = "(unknown)"
		}
		if len(got.Sites) != 1 || got.Sites[0] != wantSite {
			t.Errorf("sample %d: sites = %v, want [%s]", i, got.Sites, wantSite)
		}
		if len(got.Values) != 2 || got.Values[0] != in.Objects || got.Values[1] != in.Bytes {
			t.Errorf("sample %d: values = %v, want [%d %d]", i, got.Values, in.Objects, in.Bytes)
		}
		if got.Labels["type"] != in.Type {
			t.Errorf("sample %d: type label = %q, want %q", i, got.Labels["type"], in.Type)
		}
	}
}

func TestHeapProfileSharedSitesShareLocations(t *testing.T) {
	// Two types allocated at the same site must resolve to the same site
	// name (one location), not duplicate it.
	samples := []SiteSample{
		{Site: "factory", Type: "A", Objects: 1, Bytes: 8},
		{Site: "factory", Type: "B", Objects: 2, Bytes: 16},
	}
	p, err := ParseProfile(EncodeHeapProfile(samples, 0))
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if p.Samples[0].Sites[0] != "factory" || p.Samples[1].Sites[0] != "factory" {
		t.Fatalf("sites = %v / %v", p.Samples[0].Sites, p.Samples[1].Sites)
	}
}

func TestHeapProfileEmpty(t *testing.T) {
	p, err := ParseProfile(EncodeHeapProfile(nil, 0))
	if err != nil {
		t.Fatalf("ParseProfile of empty profile: %v", err)
	}
	if len(p.Samples) != 0 || len(p.SampleTypes) != 2 {
		t.Fatalf("empty profile parsed as %+v", p)
	}
}

func TestParseProfileRejectsGarbage(t *testing.T) {
	if _, err := ParseProfile([]byte("not a profile")); err == nil {
		t.Fatal("ParseProfile accepted non-gzip input")
	}
}
