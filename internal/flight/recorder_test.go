package flight

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"gcassert/internal/collector"
	"gcassert/internal/core"
	"gcassert/internal/heapdump"
)

// playCycle drives the recorder through one synthetic collection.
func playCycle(r *Recorder, seq uint64, live int) {
	r.GCBegin(seq, collector.ReasonForced)
	r.PhaseBegin(collector.PhaseMark)
	r.PhaseEnd(collector.PhaseMark, 5*time.Millisecond)
	r.GCEnd(&collector.Collection{
		Seq: seq, Reason: collector.ReasonForced,
		TotalTime: 6 * time.Millisecond, ObjectsLive: live, Workers: 1,
	})
}

func TestRecorderRingBounds(t *testing.T) {
	r := New(Config{Cycles: 4, Violations: 2})
	for i := 0; i < 10; i++ {
		playCycle(r, uint64(i), 100+i)
	}
	cycles := r.Cycles()
	if len(cycles) != 4 {
		t.Fatalf("retained %d cycles, want 4", len(cycles))
	}
	for i, cy := range cycles {
		if want := uint64(6 + i); cy.GC != want {
			t.Errorf("cycle %d: GC = %d, want %d (oldest-first ring)", i, cy.GC, want)
		}
	}
	for i := 0; i < 5; i++ {
		r.RecordViolation(ViolationRecord{GC: uint64(i), Kind: "assert-dead"})
	}
	v := r.Violations()
	if len(v) != 2 || v[0].GC != 3 || v[1].GC != 4 {
		t.Fatalf("violations = %+v, want GCs 3,4", v)
	}
	st := r.Stats()
	if st.CyclesRecorded != 10 || st.ViolationsRecorded != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRecorderCycleDetail(t *testing.T) {
	r := New(Config{})
	stats := core.Stats{}
	r.SetStatsSource(func() core.Stats { return stats })
	snap := heapdump.Snapshot{}
	r.SetCensusSource(func() (heapdump.Snapshot, bool) { return snap, true })

	// Cycle 0: 5 dead checks, 1 violation; census grows by 3 Nodes.
	r.GCBegin(0, collector.ReasonAllocFailure)
	stats.DeadVerified = 4
	stats.DeadViolations = 1
	stats.ViolationsByKind[core.KindDead] = 1
	snap = heapdump.Snapshot{GC: 0, Types: []heapdump.TypeCensus{
		{TypeName: "Node", Objects: 3, Words: 12},
	}}
	r.PhaseBegin(collector.PhaseMark)
	r.PhaseEnd(collector.PhaseMark, time.Millisecond)
	r.GCEnd(&collector.Collection{
		Seq: 0, Reason: collector.ReasonAllocFailure, Workers: 2,
		Fallback:  collector.FallbackDecider,
		PerWorker: []collector.WorkerStats{{Marked: 9, Steals: 1, DurNs: 10}},
	})

	cy := r.Cycles()[0]
	if cy.Fallback != "decider" {
		t.Errorf("Fallback = %q", cy.Fallback)
	}
	if len(cy.Phases) != 1 || cy.Phases[0].Phase != collector.PhaseMark.String() {
		t.Errorf("Phases = %+v", cy.Phases)
	}
	if len(cy.PerWorker) != 1 || cy.PerWorker[0].Marked != 9 {
		t.Errorf("PerWorker = %+v", cy.PerWorker)
	}
	var dead *KindDelta
	for i := range cy.Kinds {
		if cy.Kinds[i].Kind == "assert-dead" {
			dead = &cy.Kinds[i]
		}
	}
	if dead == nil || dead.Checks != 5 || dead.Violations != 1 {
		t.Errorf("assert-dead delta = %+v", dead)
	}
	if len(cy.CensusDelta) != 1 || cy.CensusDelta[0].Objects != 3 || cy.CensusDelta[0].Words != 12 {
		t.Errorf("CensusDelta = %+v", cy.CensusDelta)
	}

	// Cycle 1: Node shrinks to 1 object; the delta must go negative.
	r.GCBegin(1, collector.ReasonForced)
	snap = heapdump.Snapshot{GC: 1, Types: []heapdump.TypeCensus{
		{TypeName: "Node", Objects: 1, Words: 4},
	}}
	r.GCEnd(&collector.Collection{Seq: 1, Reason: collector.ReasonForced, Workers: 1})
	cy = r.Cycles()[1]
	if len(cy.CensusDelta) != 1 || cy.CensusDelta[0].Objects != -2 || cy.CensusDelta[0].Words != -8 {
		t.Errorf("shrinking CensusDelta = %+v", cy.CensusDelta)
	}
}

// TestCensusDeltaIgnoresStaleSnapshot: a census snapshot from an earlier
// cycle (e.g. introspection saw a full GC the flight recorder did not) must
// not be diffed as if it were this cycle's.
func TestCensusDeltaIgnoresStaleSnapshot(t *testing.T) {
	r := New(Config{})
	r.SetCensusSource(func() (heapdump.Snapshot, bool) {
		return heapdump.Snapshot{GC: 3, Types: []heapdump.TypeCensus{{TypeName: "T", Objects: 1}}}, true
	})
	playCycle(r, 7, 1)
	if cy := r.Cycles()[0]; cy.CensusDelta != nil {
		t.Fatalf("stale snapshot produced delta %+v", cy.CensusDelta)
	}
}

type closeBuffer struct {
	bytes.Buffer
	closed bool
}

func (c *closeBuffer) Close() error { c.closed = true; return nil }

func TestViolationTriggeredDump(t *testing.T) {
	r := New(Config{})
	r.SetProfileSource(func() []SiteSample {
		return []SiteSample{{Site: "here", Type: "T", Objects: 1, Bytes: 8}}
	})
	var dumps []*closeBuffer
	r.SetDumpSink(func() (io.WriteCloser, error) {
		b := &closeBuffer{}
		dumps = append(dumps, b)
		return b, nil
	})

	playCycle(r, 0, 1)
	r.RecordViolation(ViolationRecord{GC: 1, Kind: "assert-dead", Site: "here", Report: "Warning: ..."})
	r.RecordViolation(ViolationRecord{GC: 1, Kind: "assert-dead"}) // same cycle: no second dump
	r.RecordViolation(ViolationRecord{GC: 2, Kind: "assert-unshared"})

	if len(dumps) != 2 {
		t.Fatalf("got %d dumps, want 2 (one per violating cycle)", len(dumps))
	}
	if st := r.Stats(); st.Dumps != 2 || st.LastDumpErr != nil {
		t.Fatalf("stats = %+v", st)
	}
	b, err := ReadBundle(bytes.NewReader(dumps[0].Bytes()))
	if err != nil {
		t.Fatalf("dumped bundle does not parse: %v", err)
	}
	if b.Trigger != "violation" || !dumps[0].closed {
		t.Fatalf("trigger = %q, closed = %v", b.Trigger, dumps[0].closed)
	}
	if len(b.Violations) != 1 || b.Violations[0].Site != "here" {
		t.Fatalf("bundle violations = %+v", b.Violations)
	}
	if p, err := ParseProfile(b.HeapProfile); err != nil || len(p.Samples) != 1 {
		t.Fatalf("bundle heap profile: %v / %+v", err, p)
	}
}

// TestRequestDumpDeferredToGCEnd: RequestDump (the SIGQUIT-style hook) must
// not dump immediately — the heap may be inconsistent — but at the end of
// the next collection, once, with trigger "signal".
func TestRequestDumpDeferredToGCEnd(t *testing.T) {
	r := New(Config{})
	var dumps []*closeBuffer
	r.SetDumpSink(func() (io.WriteCloser, error) {
		b := &closeBuffer{}
		dumps = append(dumps, b)
		return b, nil
	})

	r.RequestDump()
	if len(dumps) != 0 {
		t.Fatal("RequestDump dumped before the collection finished")
	}
	playCycle(r, 0, 1)
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps after GCEnd, want 1", len(dumps))
	}
	b, err := ReadBundle(bytes.NewReader(dumps[0].Bytes()))
	if err != nil {
		t.Fatalf("signal bundle does not parse: %v", err)
	}
	if b.Trigger != "signal" || len(b.Cycles) != 1 {
		t.Fatalf("trigger = %q, cycles = %d", b.Trigger, len(b.Cycles))
	}
	playCycle(r, 1, 1)
	if len(dumps) != 1 {
		t.Fatal("request latch did not clear; dumped again without a new request")
	}
}

func TestDumpSinkErrorRetained(t *testing.T) {
	r := New(Config{})
	sinkErr := errors.New("disk full")
	r.SetDumpSink(func() (io.WriteCloser, error) { return nil, sinkErr })
	r.RecordViolation(ViolationRecord{GC: 0, Kind: "assert-dead"})
	if st := r.Stats(); st.Dumps != 0 || !errors.Is(st.LastDumpErr, sinkErr) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBundleRoundTrip(t *testing.T) {
	r := New(Config{Cycles: 8})
	r.SetProfileSource(func() []SiteSample {
		return []SiteSample{{Site: "s", Type: "T", Objects: 2, Bytes: 64}}
	})
	for i := 0; i < 3; i++ {
		playCycle(r, uint64(i), 50)
	}
	r.RecordViolation(ViolationRecord{GC: 2, Kind: "assert-ownedby", Path: []string{"A.f", "B"}})

	var buf bytes.Buffer
	if err := r.WriteBundle(&buf, "test"); err != nil {
		t.Fatalf("WriteBundle: %v", err)
	}
	b, err := ReadBundle(&buf)
	if err != nil {
		t.Fatalf("ReadBundle: %v", err)
	}
	if b.SchemaVersion != SchemaVersion || b.Trigger != "test" {
		t.Fatalf("header = %+v", b)
	}
	if len(b.Cycles) != 3 || b.TotalCycles != 3 {
		t.Fatalf("cycles = %d/%d", len(b.Cycles), b.TotalCycles)
	}
	if len(b.Violations) != 1 || len(b.Violations[0].Path) != 2 {
		t.Fatalf("violations = %+v", b.Violations)
	}
	// The profile survives the JSON round trip byte-for-byte (base64).
	if p, err := ParseProfile(b.HeapProfile); err != nil || p.Samples[0].Values[1] != 64 {
		t.Fatalf("profile after round trip: %v", err)
	}
}

func TestReadBundleRejectsWrongSchema(t *testing.T) {
	if _, err := ReadBundle(bytes.NewReader([]byte(fmt.Sprintf(`{"schema_version": %d}`, SchemaVersion+1)))); err == nil {
		t.Fatal("ReadBundle accepted a future schema version")
	}
}
