// Package version identifies who produced a telemetry artifact: the build
// (module version, Go toolchain, VCS revision) and the instance (a unique ID
// per runtime, the host, the PID). Fleet-level aggregation depends on this
// split — content hashes cover *what* a bundle says, identity records *who*
// said it, and the two must never mix: two replicas of the same deploy
// producing the same census must hash identically while remaining
// distinguishable as sources.
package version

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"sync"
)

// Build describes the running binary.
type Build struct {
	// Version is the main module version ("(devel)" for plain go run/test).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// VCSRevision and VCSTime are the commit stamped into the build, when
	// the binary was built inside a VCS checkout; Dirty marks uncommitted
	// changes.
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	Dirty       bool   `json:"dirty,omitempty"`
}

// String renders the build on one line — the -version output shared by
// every cmd tool, so fleet operators can match a binary to a commit.
func (b Build) String() string {
	s := b.Version
	if b.VCSRevision != "" {
		rev := b.VCSRevision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " " + rev
		if b.Dirty {
			s += "+dirty"
		}
		if b.VCSTime != "" {
			s += " (" + b.VCSTime + ")"
		}
	}
	return s + " " + b.GoVersion
}

// Print writes the canonical `tool -version` line for a cmd tool.
func Print(w io.Writer, tool string) {
	fmt.Fprintf(w, "%s %s\n", tool, CurrentBuild())
}

var (
	buildOnce sync.Once
	build     Build
)

// CurrentBuild returns the binary's build description, read once from the
// embedded Go build info.
func CurrentBuild() Build {
	buildOnce.Do(func() {
		build = Build{Version: "(devel)", GoVersion: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			build.Version = bi.Main.Version
		}
		build.GoVersion = bi.GoVersion
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				build.VCSRevision = s.Value
			case "vcs.time":
				build.VCSTime = s.Value
			case "vcs.modified":
				build.Dirty = s.Value == "true"
			}
		}
	})
	return build
}

// Identity names one runtime instance: the stable ID fleet aggregation keys
// on, plus where it runs and what build it is. Identity travels *alongside*
// content hashes, never inside them.
type Identity struct {
	// InstanceID uniquely names this runtime instance across the fleet.
	InstanceID string `json:"instance_id"`
	// Host and PID locate the process.
	Host string `json:"host,omitempty"`
	PID  int    `json:"pid,omitempty"`
	// Build is the binary that produced the artifact.
	Build Build `json:"build"`
}

// NewIdentity builds an identity for this process. instanceID may be empty,
// in which case a host-pid-random ID is generated — every runtime in a
// process gets a distinct one, so multi-tenant hosts stay tellable-apart.
func NewIdentity(instanceID string) Identity {
	host, _ := os.Hostname()
	if host == "" {
		host = "unknown"
	}
	if instanceID == "" {
		var b [4]byte
		_, _ = rand.Read(b[:])
		instanceID = fmt.Sprintf("%s-%d-%s", host, os.Getpid(), hex.EncodeToString(b[:]))
	}
	return Identity{InstanceID: instanceID, Host: host, PID: os.Getpid(), Build: CurrentBuild()}
}

// Sub derives the identity of a named sub-instance hosted inside this one —
// a tenant of a multi-runtime server. The child shares host, PID, and build
// and composes its ID as "parent/name", so many tenants configured with the
// same base instance ID stay distinguishable at the fleet collector instead
// of colliding, while still sorting under their host.
func (id Identity) Sub(name string) Identity {
	id.InstanceID = id.InstanceID + "/" + name
	return id
}
