package version

import (
	"strings"
	"testing"
)

func TestNewIdentityGeneratesDistinctIDs(t *testing.T) {
	a, b := NewIdentity(""), NewIdentity("")
	if a.InstanceID == "" || a.InstanceID == b.InstanceID {
		t.Errorf("generated IDs not distinct: %q vs %q", a.InstanceID, b.InstanceID)
	}
	if c := NewIdentity("fixed"); c.InstanceID != "fixed" {
		t.Errorf("explicit ID not preserved: %q", c.InstanceID)
	}
}

func TestSubComposesTenantIDs(t *testing.T) {
	parent := NewIdentity("host-9")
	a, b := parent.Sub("tenant-a"), parent.Sub("tenant-b")
	if a.InstanceID != "host-9/tenant-a" || b.InstanceID != "host-9/tenant-b" {
		t.Errorf("composed IDs = %q, %q", a.InstanceID, b.InstanceID)
	}
	// The child shares everything but the ID; the parent is unchanged.
	if a.Host != parent.Host || a.PID != parent.PID || a.Build != parent.Build {
		t.Error("Sub changed host/PID/build")
	}
	if parent.InstanceID != "host-9" {
		t.Errorf("Sub mutated the parent: %q", parent.InstanceID)
	}
	// Composition also applies to generated parent IDs.
	gen := NewIdentity("").Sub("t")
	if !strings.HasSuffix(gen.InstanceID, "/t") {
		t.Errorf("generated parent did not compose: %q", gen.InstanceID)
	}
}
