package gcassert_test

// Property-based tests (testing/quick) for the system-level guarantees the
// paper claims: no false positives — "any violation represents a mismatch
// between the programmer's expectations and the actual behavior" — and
// detection of every violation that persists across a GC boundary.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gcassert"
)

// graphWorld is a randomized mutator: a pool of objects with two ref fields,
// a set of root slots, and a Go-side mirror of every edge.
type graphWorld struct {
	vm    *gcassert.Runtime
	rep   *gcassert.CollectingReporter
	th    *gcassert.Thread
	fr    *gcassert.Frame
	node  gcassert.TypeID
	objs  []gcassert.Ref
	edges map[gcassert.Ref][2]gcassert.Ref
	roots []gcassert.Ref
	nroot int
}

func newGraphWorld(t testing.TB, n, nroots int, rng *rand.Rand) *graphWorld {
	t.Helper()
	w := &graphWorld{rep: &gcassert.CollectingReporter{}, nroot: nroots}
	w.vm = gcassert.New(gcassert.Options{HeapBytes: 8 << 20, Infrastructure: true, Reporter: w.rep})
	w.node = w.vm.Define("N",
		gcassert.Field{Name: "a", Ref: true},
		gcassert.Field{Name: "b", Ref: true})
	w.th = w.vm.NewThread("main")
	w.fr = w.th.Push(nroots)
	w.edges = make(map[gcassert.Ref][2]gcassert.Ref)
	for i := 0; i < n; i++ {
		w.objs = append(w.objs, w.th.New(w.node))
		// Root everything during construction so nothing dies early.
		if i < nroots {
			w.fr.Set(i, w.objs[i])
		}
	}
	// The constructor above can only root the first nroots objects; link
	// the rest into a temporary chain from root 0 so they survive until the
	// random edges are in place... simpler: no GC can run here because no
	// allocation happens after the last New, so wiring edges now is safe.
	for _, a := range w.objs {
		var e [2]gcassert.Ref
		for slot := 0; slot < 2; slot++ {
			if rng.Intn(3) > 0 {
				tgt := w.objs[rng.Intn(n)]
				w.vm.SetRef(a, slot, tgt)
				e[slot] = tgt
			}
		}
		w.edges[a] = e
	}
	for i := 0; i < nroots; i++ {
		r := w.objs[rng.Intn(n)]
		w.fr.Set(i, r)
		w.roots = append(w.roots, r)
	}
	return w
}

// reachable computes the oracle closure from the current roots.
func (w *graphWorld) reachable() map[gcassert.Ref]bool {
	seen := map[gcassert.Ref]bool{}
	var stack []gcassert.Ref
	for _, r := range w.roots {
		if r != gcassert.Nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, tgt := range w.edges[a] {
			if tgt != gcassert.Nil && !seen[tgt] {
				seen[tgt] = true
				stack = append(stack, tgt)
			}
		}
	}
	return seen
}

// incomingCount counts edges into a (roots do not count as pointers, per the
// paper's "incoming pointer" definition over heap objects — but a root plus
// a heap pointer is still one heap pointer).
func (w *graphWorld) incomingCount(a gcassert.Ref, live map[gcassert.Ref]bool) int {
	n := 0
	for src, e := range w.edges {
		if !live[src] {
			continue
		}
		for _, tgt := range e {
			if tgt == a {
				n++
			}
		}
	}
	return n
}

// TestPropertyDeadAssertionExact: for a random graph and a random object,
// assert-dead fires at the next GC iff the object is reachable — no false
// positives, no false negatives.
func TestPropertyDeadAssertionExact(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := newGraphWorld(t, 120, 6, rng)
		target := w.objs[rng.Intn(len(w.objs))]
		w.vm.AssertDead(target)
		want := w.reachable()[target]
		w.vm.Collect()
		got := len(w.rep.ByKind(gcassert.KindDead)) == 1
		if got != want {
			t.Logf("seed %d: violation=%v, reachable=%v", seed, got, want)
			return false
		}
		// Verified-dead accounting on the flip side.
		if !want && w.vm.AssertionStats().DeadVerified != 1 {
			t.Logf("seed %d: unreachable object not verified dead", seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyUnsharedExact: assert-unshared fires iff the object has two or
// more incoming heap pointers from live objects (or a root plus one pointer,
// i.e. it is encountered more than once during the trace).
func TestPropertyUnsharedExact(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := newGraphWorld(t, 100, 5, rng)
		target := w.objs[rng.Intn(len(w.objs))]
		live := w.reachable()
		if !live[target] {
			return true // dead objects are never encountered: vacuous
		}
		w.vm.AssertUnshared(target)

		// Oracle: encounters = incoming edges from live objects + root
		// slots holding it.
		enc := w.incomingCount(target, live)
		for _, r := range w.roots {
			if r == target {
				enc++
			}
		}
		w.vm.Collect()
		got := len(w.rep.ByKind(gcassert.KindUnshared)) > 0
		want := enc > 1
		if got != want {
			t.Logf("seed %d: violation=%v, encounters=%d", seed, got, enc)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyInstanceCountsMatchOracle: the engine's per-type live count
// equals the true number of reachable instances.
func TestPropertyInstanceCountsMatchOracle(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := newGraphWorld(t, 150, 7, rng)
		w.vm.AssertInstances(w.node, 1<<40) // huge limit: just count
		w.vm.Collect()
		n, ok := w.vm.LiveInstances(w.node)
		if !ok {
			return false
		}
		return n == int64(len(w.reachable()))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyViolationPathsAreReal: every reported path is a genuine chain
// of references from a root to the offending object in the mirrored graph.
func TestPropertyViolationPathsAreReal(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := newGraphWorld(t, 120, 6, rng)
		// Assert-dead a handful of reachable objects to force violations.
		live := w.reachable()
		nAsserted := 0
		for _, o := range w.objs {
			if live[o] && rng.Intn(10) == 0 {
				w.vm.AssertDead(o)
				nAsserted++
			}
		}
		w.vm.Collect()
		vs := w.rep.ByKind(gcassert.KindDead)
		if len(vs) != nAsserted {
			t.Logf("seed %d: %d asserted, %d reported", seed, nAsserted, len(vs))
			return false
		}
		for _, v := range vs {
			p := v.Path
			if len(p) == 0 || p[len(p)-1].Addr != v.Object {
				t.Logf("seed %d: path does not end at object", seed)
				return false
			}
			isRoot := false
			for _, r := range w.roots {
				if r == p[0].Addr {
					isRoot = true
				}
			}
			if !isRoot {
				t.Logf("seed %d: path does not start at a root", seed)
				return false
			}
			for i := 0; i+1 < len(p); i++ {
				e := w.edges[p[i].Addr]
				if e[0] != p[i+1].Addr && e[1] != p[i+1].Addr {
					t.Logf("seed %d: fake edge in path", seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCollectionPreservesGraph: after arbitrary collections, every
// surviving edge still reads back exactly as mirrored (no corruption, no
// premature frees), across repeated mutate/collect rounds.
func TestPropertyCollectionPreservesGraph(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := newGraphWorld(t, 100, 5, rng)
		for round := 0; round < 5; round++ {
			// Random mutations among currently-live objects.
			live := w.reachable()
			var liveList []gcassert.Ref
			for a := range live {
				liveList = append(liveList, a)
			}
			if len(liveList) == 0 {
				return true
			}
			for m := 0; m < 20; m++ {
				src := liveList[rng.Intn(len(liveList))]
				slot := rng.Intn(2)
				var tgt gcassert.Ref
				if rng.Intn(4) > 0 {
					tgt = liveList[rng.Intn(len(liveList))]
				}
				w.vm.SetRef(src, slot, tgt)
				e := w.edges[src]
				e[slot] = tgt
				w.edges[src] = e
			}
			// Drop and rebind some roots.
			for i := range w.roots {
				if rng.Intn(3) == 0 {
					w.roots[i] = liveList[rng.Intn(len(liveList))]
					w.fr.Set(i, w.roots[i])
				}
			}
			w.vm.Collect()
			// Verify all reachable edges.
			for a := range w.reachable() {
				e := w.edges[a]
				if w.vm.GetRef(a, 0) != e[0] || w.vm.GetRef(a, 1) != e[1] {
					t.Logf("seed %d round %d: edge corruption", seed, round)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
